// Package core implements the paper's contribution: the BN Fission-n-Fusion
// restructuring passes over the graph IR, and a numeric executor that runs
// both baseline and restructured graphs through internal/layers and
// internal/kernels so the transformation can be verified end to end.
//
// The passes mirror §3.2 of the paper:
//
//   - Fission splits each training-mode BN into a statistics sub-layer
//     (sub-BN1) and a normalize sub-layer (sub-BN2), and likewise splits the
//     backward pass into the dγ/dβ reductions (sub-BN2') and the element-wise
//     input gradient (sub-BN1').
//   - Fusion glues sub-BN1 into the preceding CONV (OpConvStats) and sub-BN2
//     into the following ReLU and CONV (OpBNReLUConv). BNs not preceded by a
//     CONV (composite-layer boundaries) keep a standalone sub-BN1 node.
//   - MVF removes the mean→variance dependency via V(X)=E(X²)−E(X)².
//   - RCF fuses any remaining ReLU into its following CONV (OpReLUConv).
//   - ICF extends fusion across Concat/Split at composite-layer boundaries.
//
// The executor can additionally serve every per-pass buffer — node outputs,
// saved x̂ maps, dropout masks, gradients, and layer workspace — from a
// liveness-driven tensor.Arena (see WithArena): buffers return to the arena
// at the End step of the live interval memplan.TrainingIntervals computes,
// so steady-state training iterations run almost allocation-free while
// producing bit-identical outputs to the legacy allocation path.
package core

import (
	"fmt"
	"strings"

	"bnff/internal/graph"
)

// Scenario names the evaluation configurations of the paper's Figure 7.
type Scenario int

const (
	Baseline Scenario = iota // reference implementation, no restructuring
	RCF                      // ReLU-CONV fusion only
	RCFMVF                   // RCF + mean/variance fusion (BN stays monolithic)
	BNFF                     // full Fission-n-Fusion (includes MVF and RCF)
	BNFFICF                  // BNFF + inter-composite-layer fusion
)

//lint:ignore noglobals read-only scenario-name table, written by no one after compile
var scenarioNames = [...]string{"baseline", "RCF", "RCF+MVF", "BNFF", "BNFF+ICF"}

func (s Scenario) String() string {
	if s < 0 || int(s) >= len(scenarioNames) {
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
	return scenarioNames[s]
}

// Scenarios lists every configuration in evaluation order.
func Scenarios() []Scenario { return []Scenario{Baseline, RCF, RCFMVF, BNFF, BNFFICF} }

// ParseScenario maps a user-facing configuration name onto its Scenario.
// Matching is case-insensitive; "mvf" and "icf" are accepted as shorthand
// for "rcf+mvf" and "bnff+icf".
func ParseScenario(s string) (Scenario, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return Baseline, nil
	case "rcf":
		return RCF, nil
	case "rcf+mvf", "mvf":
		return RCFMVF, nil
	case "bnff":
		return BNFF, nil
	case "bnff+icf", "icf":
		return BNFFICF, nil
	}
	return Baseline, fmt.Errorf("core: unknown scenario %q (want baseline, rcf, rcf+mvf, bnff, or bnff+icf)", s)
}

// Options are the individual restructuring switches; Scenario.Options maps
// the paper's configurations onto them.
type Options struct {
	RCF     bool // fuse ReLU into the following CONV
	MVF     bool // single-sweep statistics via E(X²)−E(X)²
	Fission bool // split BN and fuse the sub-layers with neighboring CONVs
	ICF     bool // fuse boundary sub-BN1 with the adjacent Concat/Split
}

// Options returns the switch settings for a scenario.
func (s Scenario) Options() Options {
	switch s {
	case RCF:
		return Options{RCF: true}
	case RCFMVF:
		return Options{RCF: true, MVF: true}
	case BNFF:
		return Options{RCF: true, MVF: true, Fission: true}
	case BNFFICF:
		return Options{RCF: true, MVF: true, Fission: true, ICF: true}
	default:
		return Options{}
	}
}

// Restructure rewrites g in place according to opts and re-validates it.
// The graph must be a freshly built baseline graph (passes are not designed
// to stack on an already-restructured graph).
func Restructure(g *graph.Graph, opts Options) error {
	for _, n := range g.Nodes {
		switch n.Kind {
		case graph.OpBNReLUConv, graph.OpReLUConv, graph.OpSubBN1, graph.OpSubBN2:
			return fmt.Errorf("core: graph %q already restructured (found %v node %q)", g.Name, n.Kind, n.Name)
		}
		if n.StatsOut != nil {
			return fmt.Errorf("core: graph %q already restructured (node %q has a statistics epilogue)", g.Name, n.Name)
		}
	}
	if opts.Fission {
		if err := fissionFusion(g, opts); err != nil {
			return err
		}
	}
	if opts.RCF {
		if err := reluConvFusion(g); err != nil {
			return err
		}
	}
	if opts.MVF && !opts.Fission {
		for _, n := range g.Live() {
			if n.Kind == graph.OpBN {
				n.BN.MVF = true
			}
		}
	}
	if err := g.Normalize(); err != nil {
		return err
	}
	return g.Validate()
}

// singleConsumer returns the lone live consumer of n, or nil if the fan-out
// differs from one. Fusion across a fan-out point would duplicate work, so
// every fusion rule requires it.
func singleConsumer(cons map[int][]*graph.Node, n *graph.Node) *graph.Node {
	cs := cons[n.ID]
	if len(cs) != 1 {
		return nil
	}
	return cs[0]
}

// fissionFusion performs the BN fission and both fusions. For every
// monolithic BN node (input p, consumers r…):
//
//	stats side: if p is conv-like and consumed only by this BN, p gains a
//	StatsOut epilogue (sub-BN1 fused into the preceding CONV — which may
//	itself already be a BNReLUConv from the previous BN's window, the
//	overlapping-windows case of a CONV-BN-ReLU-CONV-BN chain). Otherwise a
//	standalone OpSubBN1 node is added reading p; when opts.ICF is set and p
//	is a Concat, the sub-BN1 is marked ICF (its sweeps ride the
//	Concat/Split).
//
//	normalize side: if the BN feeds exactly ReLU → CONV with no other
//	consumers, the CONV becomes OpBNReLUConv absorbing the BN and ReLU.
//	Otherwise the BN node itself becomes a standalone OpSubBN2.
func fissionFusion(g *graph.Graph, opts Options) error {
	cons := g.Consumers()
	for _, b := range g.Nodes {
		if b.Dead || b.Kind != graph.OpBN {
			continue
		}
		p := b.Inputs[0]
		b.BN.MVF = opts.MVF

		// Statistics side (sub-BN1).
		var statsFrom *graph.Node
		if p.Kind.IsConvLike() && p.StatsOut == nil && singleConsumer(cons, p) == b {
			p.StatsOut = b.BN
			statsFrom = p
		} else {
			s := &graph.Node{
				Kind:     graph.OpSubBN1,
				Name:     b.Name + ".stats",
				Inputs:   []*graph.Node{p},
				OutShape: p.OutShape.Clone(),
				BN:       b.BN,
				CPL:      b.CPL,
			}
			if opts.ICF && p.Kind == graph.OpConcat {
				s.BN.ICF = true
			}
			g.AddNode(s)
			statsFrom = s
		}

		// Normalize side (sub-BN2).
		r := singleConsumer(cons, b)
		if r != nil && r.Kind == graph.OpReLU {
			if c2 := singleConsumer(cons, r); c2 != nil && c2.Kind == graph.OpConv {
				c2.Kind = graph.OpBNReLUConv
				c2.Inputs = []*graph.Node{p}
				c2.BN = b.BN
				c2.StatsFrom = statsFrom
				b.Dead, r.Dead = true, true
				continue
			}
		}
		b.Kind = graph.OpSubBN2
		b.StatsFrom = statsFrom
	}
	return nil
}

// reluConvFusion applies RCF to every remaining ReLU whose single consumer
// is a plain CONV.
func reluConvFusion(g *graph.Graph) error {
	cons := g.Consumers()
	for _, r := range g.Nodes {
		if r.Dead || r.Kind != graph.OpReLU {
			continue
		}
		c := singleConsumer(cons, r)
		if c == nil || c.Kind != graph.OpConv {
			continue
		}
		c.Kind = graph.OpReLUConv
		c.Inputs = []*graph.Node{r.Inputs[0]}
		r.Dead = true
	}
	return nil
}
