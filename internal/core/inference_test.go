package core

import (
	"testing"

	"bnff/internal/models"
	"bnff/internal/tensor"
)

// trainBriefly runs a few forwards with running-stat tracking so the
// inference statistics are meaningful.
func trainBriefly(t *testing.T, ex *Executor, inShape tensor.Shape, steps int) {
	t.Helper()
	ex.trackRunning = true
	rng := tensor.NewRNG(77)
	for i := 0; i < steps; i++ {
		x := tensor.New(inShape...)
		rng.FillNormal(x, 0.2, 1.1)
		if _, err := ex.Forward(x); err != nil {
			t.Fatal(err)
		}
	}
	ex.trackRunning = false
}

// In inference mode a sample's output must not depend on its batch peers —
// the defining difference from training-mode BN.
func TestInferenceBatchIndependence(t *testing.T) {
	for _, s := range []Scenario{Baseline, BNFF} {
		g, err := models.TinyCNN(4, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := Restructure(g, s.Options()); err != nil {
			t.Fatal(err)
		}
		ex, err := NewExecutor(g, WithSeed(21))
		if err != nil {
			t.Fatal(err)
		}
		trainBriefly(t, ex, tensor.Shape{4, 3, 8, 8}, 5)

		ex.inference = true
		batch := tensor.New(4, 3, 8, 8)
		tensor.NewRNG(88).FillNormal(batch, 0, 1)
		yBatch, err := ex.Forward(batch)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		// Rebuild an executor view at batch size 1 for the same weights.
		g1, err := models.TinyCNN(1, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := Restructure(g1, s.Options()); err != nil {
			t.Fatal(err)
		}
		ex1, err := NewExecutor(g1, WithSeed(22))
		if err != nil {
			t.Fatal(err)
		}
		if err := ex1.CopyParamsFrom(ex); err != nil {
			t.Fatal(err)
		}
		for name, r := range ex.Running {
			copy(ex1.Running[name].Data, r.Data)
		}
		ex1.inference = true

		// Sample 0 alone must produce sample 0's batch output.
		per := 3 * 8 * 8
		x0, err := tensor.FromSlice(batch.Data[:per], 1, 3, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		y0, err := ex1.Forward(x0)
		if err != nil {
			t.Fatal(err)
		}
		classes := yBatch.Dim(1)
		row, err := tensor.FromSlice(yBatch.Data[:classes], 1, classes)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(row, y0, 1e-4, 1e-4) {
			d, _ := tensor.MaxAbsDiff(row, y0)
			t.Errorf("%v: inference output depends on batch peers (diff %v)", s, d)
		}
	}
}

// Baseline and BNFF executors must agree in inference mode too.
func TestInferenceScenarioEquivalence(t *testing.T) {
	gBase, _ := models.TinyDenseNet(4)
	base, err := NewExecutor(gBase, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	trainBriefly(t, base, tensor.Shape{4, 3, 16, 16}, 4)

	gBNFF, _ := models.TinyDenseNet(4)
	if err := Restructure(gBNFF, BNFF.Options()); err != nil {
		t.Fatal(err)
	}
	fused, err := NewExecutor(gBNFF, WithSeed(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := fused.CopyParamsFrom(base); err != nil {
		t.Fatal(err)
	}
	for name, r := range base.Running {
		copy(fused.Running[name].Data, r.Data)
	}

	base.inference, fused.inference = true, true
	x := tensor.New(4, 3, 16, 16)
	tensor.NewRNG(33).FillNormal(x, 0, 1)
	yb, err := base.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	yf, err := fused.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(yb, yf, 1e-3, 1e-3) {
		d, _ := tensor.MaxAbsDiff(yb, yf)
		t.Errorf("inference BNFF differs from baseline by %v", d)
	}
}

func TestInferenceBackwardRejected(t *testing.T) {
	g, _ := models.TinyCNN(2, 8, 4)
	ex, err := NewExecutor(g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ex.inference = true
	x := tensor.New(2, 3, 8, 8)
	if _, err := ex.Forward(x); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Backward(tensor.New(2, 4)); err == nil {
		t.Error("Backward allowed in inference mode")
	}
}

// Inference must be deterministic across calls (no batch statistics drift).
func TestInferenceDeterminism(t *testing.T) {
	g, _ := models.TinyResNet(2)
	ex, err := NewExecutor(g, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	trainBriefly(t, ex, tensor.Shape{2, 3, 16, 16}, 3)
	ex.inference = true
	x := tensor.New(2, 3, 16, 16)
	tensor.NewRNG(10).FillNormal(x, 0, 1)
	y1, err := ex.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y1 = y1.Clone()
	y2, err := ex.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(y1, y2); d != 0 {
		t.Errorf("inference not deterministic (diff %v)", d)
	}
}
