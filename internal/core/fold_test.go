package core

import (
	"bytes"
	"strings"
	"testing"

	"bnff/internal/graph"
	"bnff/internal/models"
	"bnff/internal/tensor"
)

// foldedCheckpoint trains a registry model briefly and returns its checkpoint
// plus the batch-N input shape, so fold tests load identical weights into
// unfolded and folded executors.
func foldedCheckpoint(t *testing.T, name string, batch int) ([]byte, tensor.Shape) {
	t.Helper()
	g, err := models.Build(name, batch)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(g, WithSeed(61))
	if err != nil {
		t.Fatal(err)
	}
	in := g.Nodes[0].OutShape
	trainBriefly(t, ex, in, 4)
	var buf bytes.Buffer
	if err := ex.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), in
}

// Every tiny registry model must produce (near) identical inference outputs
// folded and unfolded — the fold is a pure recompilation of the same math.
func TestFoldEquivalenceRegistry(t *testing.T) {
	for _, name := range models.Names() {
		if !strings.HasPrefix(name, "tiny-") {
			continue // full-size models are analytical-only
		}
		t.Run(name, func(t *testing.T) {
			const batch = 4
			ckpt, in := foldedCheckpoint(t, name, batch)

			gu, err := models.Build(name, batch)
			if err != nil {
				t.Fatal(err)
			}
			unfolded, err := NewExecutor(gu, WithSeed(62), WithInference())
			if err != nil {
				t.Fatal(err)
			}
			if err := unfolded.Load(bytes.NewReader(ckpt)); err != nil {
				t.Fatal(err)
			}

			gf, err := models.Build(name, batch)
			if err != nil {
				t.Fatal(err)
			}
			folded, err := NewExecutor(gf, WithSeed(63), WithFoldedBN())
			if err != nil {
				t.Fatal(err)
			}
			if err := folded.Load(bytes.NewReader(ckpt)); err != nil {
				t.Fatal(err)
			}
			if !folded.Folded() {
				t.Fatal("Load on a WithFoldedBN executor did not run the fold pass")
			}

			bnsBefore := gu.CountKinds()[graph.OpBN]
			bnsAfter := gf.CountKinds()[graph.OpBN]
			if bnsBefore > 0 && bnsAfter >= bnsBefore {
				t.Errorf("fold removed no BNs (%d before, %d after)", bnsBefore, bnsAfter)
			}

			x := tensor.New(in...)
			tensor.NewRNG(64).FillNormal(x, 0, 1)
			yu, err := unfolded.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			yf, err := folded.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.AllClose(yu, yf, 1e-3, 1e-3) {
				d, _ := tensor.MaxAbsDiff(yu, yf)
				t.Errorf("folded inference differs from unfolded by %v", d)
			}
		})
	}
}

// The structural rewrite must be complete over the whole registry: after
// FoldBN, no live BN may remain whose input is a plain single-consumer CONV.
func TestFoldStructureRegistry(t *testing.T) {
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			g, err := models.Build(name, 2)
			if err != nil {
				t.Fatal(err)
			}
			hadBN := g.CountKinds()[graph.OpBN] > 0
			pairs, err := graph.FoldBN(g)
			if err != nil {
				t.Fatal(err)
			}
			if hadBN && len(pairs) == 0 {
				t.Fatal("no CONV→BN pair folded; every BN-bearing registry model has at least one")
			}
			cons := g.Consumers()
			for _, n := range g.Live() {
				if n.Kind != graph.OpBN {
					continue
				}
				in := n.Inputs[0]
				if in.Kind == graph.OpConv && !in.FoldedBias && in != g.Output && len(cons[in.ID]) == 1 {
					t.Errorf("BN %q still consumes foldable CONV %q", n.Name, in.Name)
				}
			}
			for _, pr := range pairs {
				if !pr.Conv.FoldedBias {
					t.Errorf("folded CONV %q not marked FoldedBias", pr.Conv.Name)
				}
			}
		})
	}
}

// A BN fed by something other than a dedicated CONV (here: a pooling layer)
// must survive the fold and keep normalizing on running statistics.
func TestFoldKeepsUnfoldableBN(t *testing.T) {
	build := func(batch int) (*graph.Graph, error) {
		return models.TinyCNN(batch, 8, 4)
	}
	g, err := build(2)
	if err != nil {
		t.Fatal(err)
	}
	// Splice a second consumer onto the first CONV so its BN is unfoldable.
	var conv *graph.Node
	for _, n := range g.Live() {
		if n.Kind == graph.OpConv {
			conv = n
			break
		}
	}
	relu := g.ReLU("fan-out", conv, -1)
	_ = relu
	pairs, err := graph.FoldBN(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		if pr.Conv == conv {
			t.Fatal("fan-out CONV folded despite a second consumer")
		}
	}
	bns := g.CountKinds()[graph.OpBN]
	if bns == 0 {
		t.Fatal("the unfoldable BN disappeared")
	}
}

func TestFoldRequiresInference(t *testing.T) {
	g, _ := models.TinyCNN(2, 8, 4)
	ex, err := NewExecutor(g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.FoldBN(); err == nil {
		t.Error("FoldBN allowed on a training-mode executor")
	}
}

func TestFoldIdempotent(t *testing.T) {
	ckpt, in := foldedCheckpoint(t, "tiny-cnn", 2)
	g, _ := models.TinyCNN(2, 8, 4)
	ex, err := NewExecutor(g, WithFoldedBN())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Load(bytes.NewReader(ckpt)); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(in...)
	tensor.NewRNG(5).FillNormal(x, 0, 1)
	y1, err := ex.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	y1 = y1.Clone()
	if err := ex.FoldBN(); err != nil {
		t.Fatalf("second FoldBN not a no-op: %v", err)
	}
	y2, err := ex.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(y1, y2); d != 0 {
		t.Errorf("re-folding changed the output by %v", d)
	}
}

// Folding is a baseline-graph compilation; restructured training graphs must
// be rejected, not silently half-folded.
func TestFoldRejectsRestructured(t *testing.T) {
	g, _ := models.TinyCNN(2, 8, 4)
	if err := Restructure(g, BNFF.Options()); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.FoldBN(g); err == nil {
		t.Error("FoldBN accepted a restructured graph")
	}
}

// Folding deletes the absorbed BN parameters, so a folded executor no longer
// matches the unfolded checkpoint layout: re-loading must fail loudly.
func TestFoldedExecutorRejectsReload(t *testing.T) {
	ckpt, _ := foldedCheckpoint(t, "tiny-cnn", 2)
	g, _ := models.TinyCNN(2, 8, 4)
	ex, err := NewExecutor(g, WithFoldedBN())
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Load(bytes.NewReader(ckpt)); err != nil {
		t.Fatal(err)
	}
	if err := ex.Load(bytes.NewReader(ckpt)); err == nil {
		t.Error("re-load after folding succeeded; the fold is terminal")
	}
}

func benchInference(b *testing.B, fold bool) {
	const batch = 8
	g, err := models.TinyResNet(batch)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := NewExecutor(g, WithSeed(7), WithRunningStats())
	if err != nil {
		b.Fatal(err)
	}
	in := g.Nodes[0].OutShape
	x := tensor.New(in...)
	tensor.NewRNG(8).FillNormal(x, 0, 1)
	if _, err := ex.Forward(x); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ex.Save(&buf); err != nil {
		b.Fatal(err)
	}

	g2, err := models.TinyResNet(batch)
	if err != nil {
		b.Fatal(err)
	}
	opt := WithInference()
	if fold {
		opt = WithFoldedBN()
	}
	run, err := NewExecutor(g2, opt)
	if err != nil {
		b.Fatal(err)
	}
	if err := run.Load(bytes.NewReader(buf.Bytes())); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferenceUnfolded(b *testing.B) { benchInference(b, false) }
func BenchmarkInferenceFolded(b *testing.B)   { benchInference(b, true) }
