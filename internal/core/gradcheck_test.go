package core

import (
	"math"
	"sort"
	"testing"

	"bnff/internal/layers"
	"bnff/internal/models"
	"bnff/internal/tensor"
)

// endToEndLoss runs forward + softmax cross-entropy for the current
// parameters.
func endToEndLoss(t *testing.T, ex *Executor, x *tensor.Tensor, labels []int) float64 {
	t.Helper()
	logits, err := ex.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	loss, _, err := layers.SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	return loss
}

// TestExecutorGradientsEndToEnd verifies the whole executor backward —
// through conv, BN (or its fused restructuring), ReLU, pooling, concat, and
// the loss — against central finite differences on sampled parameter
// entries. This is the strongest correctness statement the numeric plane
// makes: not layer-local gradients, but d(loss)/d(θ) for the assembled
// system, in both the baseline and the restructured world.
func TestExecutorGradientsEndToEnd(t *testing.T) {
	for _, s := range []Scenario{Baseline, BNFF} {
		g, err := models.TinyCNN(4, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := Restructure(g, s.Options()); err != nil {
			t.Fatal(err)
		}
		ex, err := NewExecutor(g, WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.New(4, 3, 8, 8)
		tensor.NewRNG(7).FillNormal(x, 0, 1)
		labels := []int{0, 1, 2, 3}

		logits, err := ex.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		_, dlogits, err := layers.SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		grads, err := ex.Backward(dlogits)
		if err != nil {
			t.Fatal(err)
		}

		// Sample a handful of entries from every parameter tensor and check
		// them by central differences.
		names := make([]string, 0, len(ex.Params))
		for name := range ex.Params {
			names = append(names, name)
		}
		sort.Strings(names)
		rng := tensor.NewRNG(99)
		const eps = 1e-2
		for _, name := range names {
			p := ex.Params[name]
			gr := grads[name]
			if gr == nil {
				t.Fatalf("%v: no gradient for %q", s, name)
			}
			for k := 0; k < 3; k++ {
				i := rng.Intn(p.NumElems())
				orig := p.Data[i]
				p.Data[i] = orig + eps
				lp := endToEndLoss(t, ex, x, labels)
				p.Data[i] = orig - eps
				lm := endToEndLoss(t, ex, x, labels)
				p.Data[i] = orig
				numeric := (lp - lm) / (2 * eps)
				analytic := float64(gr.Data[i])
				// Scale-aware tolerance: fp32 forward noise over fd step.
				tol := 2e-2*math.Max(math.Abs(numeric), math.Abs(analytic)) + 3e-3
				if math.Abs(numeric-analytic) > tol {
					t.Errorf("%v %s[%d]: analytic %.5f vs numeric %.5f", s, name, i, analytic, numeric)
				}
			}
		}
	}
}
