//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped there (the instrumentation
// allocates on its own account).
const raceEnabled = true
