package core

import (
	"fmt"

	"bnff/internal/graph"
	"bnff/internal/kernels"
	"bnff/internal/layers"
	"bnff/internal/obs"
	"bnff/internal/parallel"
	"bnff/internal/tensor"
)

// Executor runs a graph numerically — baseline or restructured — against
// real tensors. It owns the parameters (keyed by stable names that survive
// restructuring, so baseline and restructured executors can share weights
// for equivalence checks) and retains whatever each node's backward pass
// needs from the last forward pass.
//
// Execution behavior is configured with functional options at construction:
//
//	exec, err := core.NewExecutor(g,
//	        core.WithSeed(42),
//	        core.WithWorkers(runtime.GOMAXPROCS(0)))
//
// Each executor owns one worker pool (see internal/parallel) threaded
// through every layer dispatch, so two executors with different worker
// settings can run the same graph concurrently without interfering.
type Executor struct {
	G      *graph.Graph
	Params map[string]*tensor.Tensor

	Running map[string]*tensor.Tensor

	// trackRunning enables running-statistics updates ("<bn>.rmean",
	// "<bn>.rvar" in Running) during Forward, as training would. Set with
	// WithRunningStats or TrackRunningStats.
	trackRunning bool

	// inference switches every BN (monolithic or restructured) to the
	// running statistics instead of mini-batch statistics — the deployment
	// mode in which BN is element-wise and the classic inference-time
	// CONV+BN folding (the related work the paper contrasts with) applies.
	// Backward is unavailable in inference mode. Set with WithInference or
	// toggled around evaluation passes via EvalMode.
	inference bool

	// preciseStats switches the MVF accumulators to float64 — the paper's
	// §3.2 fallback for when E(X²) cancellation would hurt accuracy ("we can
	// use higher-precision representations to store intermediate data...
	// using higher-precision representations and arithmetic does not impact
	// training performance" since BN stays bandwidth-bound). Set with
	// WithPreciseStats.
	preciseStats bool

	seed   uint64
	pool   *parallel.Pool
	tracer *obs.Tracer // nil: tracing disabled, span paths are free
	foldBN bool        // WithFoldedBN: compile the fold after the next checkpoint load
	folded bool        // FoldBN already ran; the graph and parameters are rewritten

	alloc   *tensor.Arena // nil: legacy per-pass heap allocation (see WithArena)
	aplan   *arenaPlan    // compiled release table; invalidated by FoldBN
	metrics *obs.Registry // nil: no metrics publication (see WithMetrics)
	agauges *arenaGauges  // lazily resolved arena gauges
	live    []*graph.Node // cached G.Live() schedule; invalidated by FoldBN

	vals    map[int]*tensor.Tensor
	stats   map[int]*layers.BNStats // keyed by statistics-producer node ID
	xhats   map[int]*tensor.Tensor  // keyed by normalize-owner node ID
	poolCtx map[int]*layers.PoolContext
	masks   map[int]*tensor.Tensor // dropout masks, keyed by node ID

	concatIns []*tensor.Tensor // reusable input-gather scratch for OpConcat

	dropRNG *tensor.RNG

	// Data-parallel BN hooks (see SetBNHooks). Both nil outside ddp sync-BN
	// replicas, and every hook-bearing branch below keeps the nil path's
	// arithmetic untouched — the hooks cost nothing when unset.
	statsHook    StatsHook
	bnReduceHook BNReduceHook
}

// StatsHook replaces mini-batch statistics production for one BN identity
// during training. n is the producing node, attr the BN identity the
// statistics belong to (n.BN for BN/SubBN1 nodes, n.StatsOut for conv-fused
// epilogues), and src the activation tensor the statistics describe. The
// returned statistics may be shared across executors; the executor treats
// them as read-only and its arena ignores them on release (foreign tensors
// fall through tensor.Arena.Put). ddp's sync-BN strategy installs one to
// exchange per-sample moment partials across replicas before normalization.
type StatsHook func(n *graph.Node, attr *graph.BNAttr, src *tensor.Tensor) (*layers.BNStats, error)

// BNReduceHook intercepts the sub-BN2' reductions dγ = Σ dy·x̂ and dβ = Σ dy
// on their way into the statistics-side backward (sub-BN1'). It receives the
// locally reduced tensors and returns the tensors BackwardInput should use —
// under ddp sync-BN, fresh globally summed copies. The hook must not mutate
// its inputs: they remain the executor's parameter gradients, which the
// data-parallel gradient all-reduce combines separately.
type BNReduceHook func(n *graph.Node, dgamma, dbeta *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor, error)

// SetBNHooks installs (or, with nils, removes) the data-parallel BN hooks.
// Safe between passes; must not be called while Forward or Backward runs.
func (e *Executor) SetBNHooks(sh StatsHook, rh BNReduceHook) {
	e.statsHook = sh
	e.bnReduceHook = rh
}

// Option configures an Executor at construction time.
type Option func(*Executor)

// WithSeed sets the parameter-initialization seed (He-normal weight draws).
// Two executors built with the same seed over graphs of the same model start
// from identical parameters. The default seed is 0.
func WithSeed(seed uint64) Option { return func(e *Executor) { e.seed = seed } }

// WithWorkers sets the executor's worker-pool size, clamped to
// [1, parallel.MaxWorkers]. One worker (the default) executes every layer
// serially; more workers split batches, reductions, and element ranges
// across goroutines with deterministic results (forward bit-identical,
// backward within float32 round-off — see internal/parallel).
func WithWorkers(n int) Option { return func(e *Executor) { e.pool = parallel.New(n) } }

// WithInference builds the executor in inference mode: every BN uses running
// statistics and Backward is unavailable.
func WithInference() Option { return func(e *Executor) { e.inference = true } }

// WithFoldedBN arms the inference-time BN-fold compile pass: after the next
// checkpoint Load the executor rewrites every foldable CONV→BN pair into a
// single CONV with folded weights and bias (see FoldBN), so the served model
// pays no separate normalization sweep for those BNs. Unfoldable BNs — one
// not fed by a single-consumer CONV — keep the element-wise normalize path
// on running statistics. WithFoldedBN implies WithInference: a folded graph
// has no training semantics and Backward is unavailable.
func WithFoldedBN() Option {
	return func(e *Executor) {
		e.foldBN = true
		e.inference = true
	}
}

// WithPreciseStats switches the MVF statistics accumulators to float64
// (the paper's §3.2 precision fallback).
func WithPreciseStats() Option { return func(e *Executor) { e.preciseStats = true } }

// WithRunningStats enables running-statistics tracking during Forward, as
// training does; train.NewTrainer applies it to its executor automatically.
func WithRunningStats() Option { return func(e *Executor) { e.trackRunning = true } }

// Workers returns the executor's worker-pool size.
func (e *Executor) Workers() int { return e.pool.Workers() }

// SetWorkers replaces the executor's worker pool, clamped like WithWorkers.
// Safe between passes; must not be called while Forward or Backward runs.
func (e *Executor) SetWorkers(n int) { e.pool = parallel.New(n).WithTracer(e.tracer) }

// SetDropoutSeed resets the dropout mask stream. Two executors given the
// same seed draw identical masks, which is how the equivalence tests compare
// stochastic models across restructuring.
func (e *Executor) SetDropoutSeed(seed uint64) { e.dropRNG = tensor.NewRNG(seed) }

// TrackRunningStats switches running-statistics updates on or off between
// passes — the construction-time equivalent is WithRunningStats.
// train.NewTrainer enables it on the executor it is handed.
func (e *Executor) TrackRunningStats(on bool) { e.trackRunning = on }

// TracksRunning reports whether Forward updates the running statistics.
func (e *Executor) TracksRunning() bool { return e.trackRunning }

// InferenceMode reports whether the executor runs BN on running statistics
// (inference) rather than mini-batch statistics (training).
func (e *Executor) InferenceMode() bool { return e.inference }

// EvalMode flips the executor into inference mode with running-statistics
// tracking paused and returns a closure restoring the previous modes.
// Evaluation helpers wrap held-out passes in it:
//
//	restore := exec.EvalMode()
//	defer restore()
func (e *Executor) EvalMode() (restore func()) {
	prevInf, prevTrack := e.inference, e.trackRunning
	e.inference, e.trackRunning = true, false
	return func() { e.inference, e.trackRunning = prevInf, prevTrack }
}

// bnStash carries the sub-BN2' results (dv, dγ, dβ, x̂) from the
// normalize-side backward to the statistics-side backward, keyed by the
// statistics producer's node ID.
type bnStash struct {
	dv, xhat      *tensor.Tensor
	dgamma, dbeta *tensor.Tensor
}

// NewExecutor validates the graph, applies the options, and allocates
// initialized parameters: He-normal convolution and FC weights, γ=1, β=0,
// zeroed running statistics. Without WithWorkers the executor runs with one
// worker (serial execution).
func NewExecutor(g *graph.Graph, opts ...Option) (*Executor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Output == nil {
		return nil, fmt.Errorf("core: graph %q has no designated output node", g.Name)
	}
	e := &Executor{
		G:       g,
		Params:  make(map[string]*tensor.Tensor),
		Running: make(map[string]*tensor.Tensor),
		pool:    parallel.New(1),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.tracer != nil {
		e.pool = e.pool.WithTracer(e.tracer) // regardless of option order
	}
	rng := tensor.NewRNG(e.seed)
	for _, n := range g.Live() {
		if n.Conv != nil {
			w := tensor.New(n.Conv.WeightShape()...)
			rng.FillHe(w, n.Conv.InChannels*n.Conv.KernelH*n.Conv.KernelW)
			e.Params[n.Name+".w"] = w
			if n.FoldedBias {
				e.Params[n.Name+".b"] = tensor.New(n.Conv.OutChannels)
			}
		}
		if n.FC != nil {
			w := tensor.New(n.FC.WeightShape()...)
			rng.FillHe(w, n.FC.In)
			e.Params[n.Name+".w"] = w
			e.Params[n.Name+".b"] = tensor.New(n.FC.Out)
		}
		if n.BN != nil {
			gname := n.BN.ParamName + ".gamma"
			if _, ok := e.Params[gname]; !ok {
				gamma := tensor.New(n.BN.Channels)
				gamma.Fill(1)
				e.Params[gname] = gamma
				e.Params[n.BN.ParamName+".beta"] = tensor.New(n.BN.Channels)
				e.Running[n.BN.ParamName+".rmean"] = tensor.New(n.BN.Channels)
				rv := tensor.New(n.BN.Channels)
				rv.Fill(1)
				e.Running[n.BN.ParamName+".rvar"] = rv
			}
		}
	}
	return e, nil
}

// CopyParamsFrom overwrites this executor's parameters with o's values.
// Both graphs must have been built from the same model so the names align;
// restructuring never renames parameters, so baseline ↔ restructured copies
// always work.
func (e *Executor) CopyParamsFrom(o *Executor) error {
	for name, p := range e.Params {
		src, ok := o.Params[name]
		if !ok {
			return fmt.Errorf("core: source executor missing parameter %q", name)
		}
		if !p.Shape().Equal(src.Shape()) {
			return fmt.Errorf("core: parameter %q shape %v vs %v", name, p.Shape(), src.Shape())
		}
		copy(p.Data, src.Data)
	}
	return nil
}

// CopyRunningFrom overwrites this executor's running statistics with o's
// values — the running-state counterpart of CopyParamsFrom. Data-parallel
// training broadcasts the primary's running means/variances to every replica
// at the start of a step so their momentum updates start from the same state.
func (e *Executor) CopyRunningFrom(o *Executor) error {
	for name, r := range e.Running {
		src, ok := o.Running[name]
		if !ok {
			return fmt.Errorf("core: source executor missing running tensor %q", name)
		}
		if !r.Shape().Equal(src.Shape()) {
			return fmt.Errorf("core: running tensor %q shape %v vs %v", name, r.Shape(), src.Shape())
		}
		copy(r.Data, src.Data)
	}
	return nil
}

// Sibling builds a new executor over g configured like e: same seed, same
// worker-pool width, and the same precision/running-stats/arena choices.
// Data-parallel training uses it to stamp out replica executors over the
// rebatched shard graph; the shared seed means replicas start from the same
// parameter draws as the primary without an explicit broadcast. The sibling
// does not share the primary's tracer or metrics registry — per-replica spans
// from pool goroutines would violate the tracer's single-goroutine contract,
// so the ddp group records reduce spans itself from the dispatching side.
func (e *Executor) Sibling(g *graph.Graph) (*Executor, error) {
	opts := []Option{WithSeed(e.seed), WithWorkers(e.pool.Workers())}
	if e.preciseStats {
		opts = append(opts, WithPreciseStats())
	}
	if e.trackRunning {
		opts = append(opts, WithRunningStats())
	}
	if e.alloc != nil {
		opts = append(opts, WithArena())
	}
	return NewExecutor(g, opts...)
}

// The *Of helpers attach the executor's pool to a copy of the node's layer
// descriptor; the graph's shared descriptors stay execution-state-free.
func (e *Executor) bnOf(n *graph.Node) layers.BatchNorm {
	return layers.NewBatchNorm(n.BN.Channels).WithPool(e.pool).WithAlloc(e.alloc)
}

func (e *Executor) bnOfAttr(a *graph.BNAttr) layers.BatchNorm {
	return layers.NewBatchNorm(a.Channels).WithPool(e.pool).WithAlloc(e.alloc)
}

func (e *Executor) convOf(n *graph.Node) layers.Conv2D {
	return n.Conv.WithPool(e.pool).WithAlloc(e.alloc)
}

func (e *Executor) gamma(n *graph.Node) *tensor.Tensor { return e.Params[n.BN.ParamName+".gamma"] }
func (e *Executor) beta(n *graph.Node) *tensor.Tensor  { return e.Params[n.BN.ParamName+".beta"] }

func (e *Executor) gammaOf(a *graph.BNAttr) *tensor.Tensor { return e.Params[a.ParamName+".gamma"] }

// epilogueStats computes the StatsOut statistics of a conv-like node's fresh
// output — the sub-BN1 epilogue of the fused kernel, which always uses the
// single-sweep MVF accumulation (float64 under PreciseStats).
func (e *Executor) epilogueStats(n *graph.Node, y *tensor.Tensor) (*layers.BNStats, error) {
	if e.statsHook != nil {
		return e.statsHook(n, n.StatsOut, y)
	}
	if e.preciseStats {
		return e.bnOfAttr(n.StatsOut).ComputeStatsMVF64(y)
	}
	return e.bnOfAttr(n.StatsOut).ComputeStatsMVF(y)
}

// computeStats dispatches between the MVF single-sweep and the baseline
// two-pass statistics according to the node's BN attributes. In inference
// mode the stored running statistics are returned instead.
func (e *Executor) computeStats(n *graph.Node, x *tensor.Tensor) (*layers.BNStats, error) {
	if e.inference {
		return e.runningStats(n.BN)
	}
	if e.statsHook != nil {
		return e.statsHook(n, n.BN, x)
	}
	bn := e.bnOf(n)
	if n.BN.MVF {
		if e.preciseStats {
			return bn.ComputeStatsMVF64(x)
		}
		return bn.ComputeStatsMVF(x)
	}
	return bn.ComputeStats(x)
}

// runningStats returns the inference-time statistics for a BN identity.
func (e *Executor) runningStats(attr *graph.BNAttr) (*layers.BNStats, error) {
	rm := e.Running[attr.ParamName+".rmean"]
	rv := e.Running[attr.ParamName+".rvar"]
	if rm == nil || rv == nil {
		return nil, fmt.Errorf("core: no running statistics for %q", attr.ParamName)
	}
	return &layers.BNStats{Mean: rm, Var: rv}, nil
}

// statsFor resolves the statistics a normalize-side node should use: the
// producer's mini-batch statistics in training, the running statistics in
// inference.
func (e *Executor) statsFor(n *graph.Node) (*layers.BNStats, error) {
	if e.inference {
		return e.runningStats(n.BN)
	}
	st := e.stats[n.StatsFrom.ID]
	if st == nil {
		return nil, fmt.Errorf("core: node %q has no statistics from %q", n.Name, n.StatsFrom.Name)
	}
	return st, nil
}

// Forward executes one forward pass and returns the output node's value.
// The input must match the graph's input shape.
func (e *Executor) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if e.alloc != nil && e.vals != nil {
		// Arena path: recycle whatever the previous pass left checked out and
		// reuse the map storage instead of reallocating it.
		e.resetPass()
	} else {
		e.vals = make(map[int]*tensor.Tensor)
		e.stats = make(map[int]*layers.BNStats)
		e.xhats = make(map[int]*tensor.Tensor)
		e.poolCtx = make(map[int]*layers.PoolContext)
		e.masks = make(map[int]*tensor.Tensor)
	}
	// Per-step releases follow the training schedule; an inference pass has
	// different lifetimes (dropout aliases its input), so it recycles via the
	// resetPass sweep above instead.
	stepRelease := e.alloc != nil && !e.inference
	if stepRelease {
		if _, err := e.arenaPlanFor(); err != nil {
			return nil, err
		}
	}
	if e.dropRNG == nil {
		e.dropRNG = tensor.NewRNG(0x5eed)
	}
	passStart := e.tracer.Begin()
	defer e.tracer.End("forward", obs.CatPass, "fwd", obs.TIDPass, passStart)

	for step, n := range e.liveNodes() {
		// Input binding is bookkeeping, not compute: handle it before the
		// node span opens so every Begin below is paired with an end on
		// every path.
		if n.Kind == graph.OpInput {
			if !x.Shape().Equal(n.OutShape) {
				return nil, fmt.Errorf("core: input shape %v, graph expects %v", x.Shape(), n.OutShape)
			}
			e.vals[n.ID] = x
			if stepRelease {
				e.releaseForwardStep(step)
			}
			continue
		}
		var err error
		nodeStart := e.tracer.Begin()
		switch n.Kind {
		case graph.OpConv:
			switch {
			case n.FoldedBias:
				e.vals[n.ID], err = e.convOf(n).ForwardBias(e.in(n, 0), e.Params[n.Name+".w"], e.Params[n.Name+".b"])
			case n.StatsOut != nil && !e.inference && !e.preciseStats && e.statsHook == nil:
				var st *layers.BNStats
				e.vals[n.ID], st, err = kernels.ConvForwardStats(e.convOf(n), e.in(n, 0), e.Params[n.Name+".w"])
				e.stats[n.ID] = st
			case n.StatsOut != nil && !e.inference:
				e.vals[n.ID], err = e.convOf(n).Forward(e.in(n, 0), e.Params[n.Name+".w"])
				if err == nil {
					e.stats[n.ID], err = e.epilogueStats(n, e.vals[n.ID])
				}
			default:
				e.vals[n.ID], err = e.convOf(n).Forward(e.in(n, 0), e.Params[n.Name+".w"])
			}

		case graph.OpBN:
			var st *layers.BNStats
			st, err = e.computeStats(n, e.in(n, 0))
			if err != nil {
				break
			}
			var y, xhat *tensor.Tensor
			y, xhat, err = e.bnOf(n).Normalize(e.in(n, 0), st, e.gamma(n), e.beta(n))
			e.vals[n.ID], e.stats[n.ID], e.xhats[n.ID] = y, st, xhat

		case graph.OpSubBN1:
			if !e.inference { // inference needs no mini-batch statistics
				e.stats[n.ID], err = e.computeStats(n, e.in(n, 0))
			}
			// SubBN1 produces statistics only; it has no data output.

		case graph.OpSubBN2:
			var st *layers.BNStats
			st, err = e.statsFor(n)
			if err != nil {
				break
			}
			var y, xhat *tensor.Tensor
			y, xhat, err = e.bnOf(n).Normalize(e.in(n, 0), st, e.gamma(n), e.beta(n))
			e.vals[n.ID], e.xhats[n.ID] = y, xhat

		case graph.OpReLU:
			e.vals[n.ID] = layers.ReLUForwardAlloc(e.pool, e.alloc, e.in(n, 0))

		case graph.OpReLUConv:
			e.vals[n.ID], err = kernels.ReLUConvForward(e.convOf(n), e.in(n, 0), e.Params[n.Name+".w"])
			if err == nil && n.StatsOut != nil && !e.inference {
				e.stats[n.ID], err = e.epilogueStats(n, e.vals[n.ID])
			}

		case graph.OpBNReLUConv:
			var st *layers.BNStats
			st, err = e.statsFor(n)
			if err != nil {
				break
			}
			var y, xhat *tensor.Tensor
			y, xhat, err = kernels.FusedBNReLUConvForward(e.convOf(n), e.bnOf(n), e.in(n, 0), st,
				e.gamma(n), e.beta(n), e.Params[n.Name+".w"])
			e.vals[n.ID], e.xhats[n.ID] = y, xhat
			if err == nil && n.StatsOut != nil && !e.inference {
				e.stats[n.ID], err = e.epilogueStats(n, y)
			}

		case graph.OpPool:
			var y *tensor.Tensor
			var ctx *layers.PoolContext
			y, ctx, err = n.Pool.WithPool(e.pool).WithAlloc(e.alloc).Forward(e.in(n, 0))
			e.vals[n.ID], e.poolCtx[n.ID] = y, ctx

		case graph.OpGlobalPool:
			e.vals[n.ID], err = layers.GlobalAvgPoolForwardAlloc(e.pool, e.alloc, e.in(n, 0))

		case graph.OpFC:
			e.vals[n.ID], err = n.FC.WithPool(e.pool).WithAlloc(e.alloc).Forward(e.in(n, 0), e.Params[n.Name+".w"], e.Params[n.Name+".b"])

		case graph.OpConcat:
			ins := e.concatIns[:0]
			for i := range n.Inputs {
				ins = append(ins, e.in(n, i))
			}
			e.concatIns = ins // keep the grown backing array for the next concat
			e.vals[n.ID], err = layers.ConcatForwardAlloc(e.alloc, ins...)

		case graph.OpEWS:
			e.vals[n.ID], err = layers.EWSForwardAlloc(e.alloc, e.in(n, 0), e.in(n, 1))

		case graph.OpFlatten:
			e.vals[n.ID], err = e.in(n, 0).Reshape(n.OutShape...)

		case graph.OpDropout:
			if e.inference {
				e.vals[n.ID] = e.in(n, 0) // inverted dropout: inference is identity
				break
			}
			var y, mask *tensor.Tensor
			y, mask, err = n.Dropout.ForwardAlloc(e.alloc, e.in(n, 0), e.dropRNG)
			e.vals[n.ID], e.masks[n.ID] = y, mask

		default:
			err = fmt.Errorf("core: executor cannot run kind %v", n.Kind)
		}
		e.endNodeSpan(n, "fwd", nodeStart)
		if err != nil {
			return nil, fmt.Errorf("core: forward of node %q: %w", n.Name, err)
		}
		if stepRelease {
			e.releaseForwardStep(step)
		}
	}

	if e.trackRunning {
		if err := e.updateRunning(); err != nil {
			return nil, err
		}
	}
	out := e.vals[e.G.Output.ID]
	if out == nil {
		return nil, fmt.Errorf("core: output node %q produced no value", e.G.Output.Name)
	}
	// The caller owns the output from here on; detach it so the arena never
	// recycles storage the caller may still read.
	e.alloc.Detach(out)
	e.publishArenaMetrics()
	return out, nil
}

// liveNodes returns the execution schedule, cached so steady-state passes do
// not rebuild the topological-order slice. FoldBN rewrites the graph and
// drops the cache alongside the arena release table.
func (e *Executor) liveNodes() []*graph.Node {
	if e.live == nil {
		e.live = e.G.Live()
	}
	return e.live
}

func (e *Executor) updateRunning() error {
	for _, n := range e.liveNodes() {
		st := e.stats[n.ID]
		if st == nil {
			continue
		}
		attr := n.StatsOut
		if attr == nil {
			attr = n.BN
		}
		if attr == nil {
			continue
		}
		bn := e.bnOfAttr(attr)
		rm := e.Running[attr.ParamName+".rmean"]
		rv := e.Running[attr.ParamName+".rvar"]
		if err := bn.UpdateRunning(rm, rv, st); err != nil {
			return fmt.Errorf("core: running stats of %q: %w", attr.ParamName, err)
		}
	}
	return nil
}

// in fetches input i's forward value, which must exist because the graph is
// topologically ordered.
func (e *Executor) in(n *graph.Node, i int) *tensor.Tensor {
	return e.vals[n.Inputs[i].ID]
}

// accumGrad folds a fresh gradient contribution into the per-node map.
// The first contribution takes ownership of the tensor (every producer
// returns a fresh tensor, so no aliasing); later contributions are folded
// in place and their now-dead buffer goes back to the arena.
func (e *Executor) accumGrad(gmap map[int]*tensor.Tensor, n *graph.Node, g *tensor.Tensor) error {
	if cur := gmap[n.ID]; cur != nil {
		err := cur.AddInPlace(g)
		e.alloc.Put(g)
		return err
	}
	gmap[n.ID] = g
	return nil
}

// Backward propagates dOut (gradient w.r.t. the output node's value)
// through the graph and returns parameter gradients keyed like Params.
// Forward must have been called first.
func (e *Executor) Backward(dOut *tensor.Tensor) (map[string]*tensor.Tensor, error) {
	if e.inference {
		return nil, fmt.Errorf("core: Backward unavailable in inference mode")
	}
	if e.vals == nil {
		return nil, fmt.Errorf("core: Backward before Forward")
	}
	if !dOut.Shape().Equal(e.G.Output.OutShape) {
		return nil, fmt.Errorf("core: dOut shape %v, output is %v", dOut.Shape(), e.G.Output.OutShape)
	}
	grads := make(map[string]*tensor.Tensor)
	gmap := map[int]*tensor.Tensor{e.G.Output.ID: dOut}
	stash := make(map[int]*bnStash)
	passStart := e.tracer.Begin()
	defer e.tracer.End("backward", obs.CatPass, "bwd", obs.TIDPass, passStart)

	live := e.liveNodes()
	for i := len(live) - 1; i >= 0; i-- {
		n := live[i]
		if n.Kind == graph.OpInput {
			continue
		}
		nodeStart := e.tracer.Begin()
		err := e.backwardNode(n, gmap, grads, stash)
		e.endNodeSpan(n, "bwd", nodeStart)
		if err != nil {
			return nil, fmt.Errorf("core: backward of node %q: %w", n.Name, err)
		}
		if e.alloc != nil && e.aplan != nil {
			e.releaseBackwardStep(2*len(live)-1-i, gmap, stash)
		}
	}
	if e.alloc != nil {
		// Gradient slots nothing reads — the graph inputs' — are written but
		// have no release step; sweep them back in schedule order.
		for _, n := range live {
			if g := gmap[n.ID]; g != nil {
				e.alloc.Put(g)
				delete(gmap, n.ID)
			}
		}
	}
	e.publishArenaMetrics()
	return grads, nil
}

func (e *Executor) backwardNode(n *graph.Node, gmap map[int]*tensor.Tensor,
	grads map[string]*tensor.Tensor, stash map[int]*bnStash) error {

	dy := gmap[n.ID]
	// Conv-like nodes with a StatsOut epilogue receive their upstream
	// gradient through the sub-BN2' stash instead of the gradient map: the
	// following BN's element-wise input gradient (sub-BN1') is produced in
	// the same fused sweep this CONV's backward consumes. The synthesized dy
	// is a within-step transient; the conv cases below recycle it as soon as
	// the weight/input gradients have been computed from it.
	synth := false
	if n.Kind.IsConvLike() && n.StatsOut != nil {
		st := stash[n.ID]
		if st == nil {
			return fmt.Errorf("no sub-BN2' stash for statistics producer")
		}
		if dy != nil {
			// The stash is a statistics producer's only upstream path;
			// recycle anything that still reached the gradient map.
			e.alloc.Put(dy)
			delete(gmap, n.ID)
		}
		var err error
		dy, err = e.bnOfAttr(n.StatsOut).BackwardInput(st.dv, st.xhat, e.gammaOf(n.StatsOut),
			e.stats[n.ID], st.dgamma, st.dbeta)
		if err != nil {
			return err
		}
		synth = true
		e.releaseStats(n.ID)
	} else if n.Kind != graph.OpSubBN1 && dy == nil {
		return fmt.Errorf("no gradient reached node (kind %v)", n.Kind)
	}

	switch n.Kind {
	case graph.OpConv:
		if n.FoldedBias {
			return fmt.Errorf("folded CONV+BN is inference-only and has no backward pass")
		}
		dx, dw, err := e.convOf(n).Backward(dy, e.in(n, 0), e.Params[n.Name+".w"])
		if err != nil {
			return err
		}
		if synth {
			e.alloc.Put(dy)
		}
		grads[n.Name+".w"] = dw
		return e.accumGrad(gmap, n.Inputs[0], dx)

	case graph.OpBN:
		// The composite Backward is BackwardReduce ∘ BackwardInput; spell the
		// composition out so the reduce hook can interpose globally summed
		// dγ/dβ between the two (same arithmetic, same order, when unset).
		bn := e.bnOf(n)
		dgamma, dbeta, err := bn.BackwardReduce(dy, e.xhats[n.ID])
		if err != nil {
			return err
		}
		ing, inb := dgamma, dbeta
		if e.bnReduceHook != nil {
			if ing, inb, err = e.bnReduceHook(n, dgamma, dbeta); err != nil {
				return err
			}
		}
		dx, err := bn.BackwardInput(dy, e.xhats[n.ID], e.gamma(n), e.stats[n.ID], ing, inb)
		if err != nil {
			return err
		}
		e.releaseStats(n.ID)
		grads[n.BN.ParamName+".gamma"] = dgamma
		grads[n.BN.ParamName+".beta"] = dbeta
		return e.accumGrad(gmap, n.Inputs[0], dx)

	case graph.OpSubBN1:
		st := stash[n.ID]
		if st == nil {
			return fmt.Errorf("no sub-BN2' stash for statistics producer")
		}
		du, err := e.bnOf(n).BackwardInput(st.dv, st.xhat, e.gamma(n), e.stats[n.ID], st.dgamma, st.dbeta)
		if err != nil {
			return err
		}
		e.releaseStats(n.ID)
		return e.accumGrad(gmap, n.Inputs[0], du)

	case graph.OpSubBN2:
		bn := e.bnOf(n)
		dgamma, dbeta, err := bn.BackwardReduce(dy, e.xhats[n.ID])
		if err != nil {
			return err
		}
		grads[n.BN.ParamName+".gamma"] = dgamma
		grads[n.BN.ParamName+".beta"] = dbeta
		// The stash feeds sub-BN1' (BackwardInput); under ddp sync-BN the
		// reduce hook swaps in globally summed dγ/dβ there while the grads
		// map keeps the local sums for the gradient all-reduce.
		sg, sb := dgamma, dbeta
		if e.bnReduceHook != nil {
			if sg, sb, err = e.bnReduceHook(n, dgamma, dbeta); err != nil {
				return err
			}
		}
		stash[n.StatsFrom.ID] = &bnStash{dv: dy, xhat: e.xhats[n.ID], dgamma: sg, dbeta: sb}
		return nil

	case graph.OpReLU:
		dx, err := layers.ReLUBackwardAlloc(e.pool, e.alloc, dy, e.in(n, 0))
		if err != nil {
			return err
		}
		return e.accumGrad(gmap, n.Inputs[0], dx)

	case graph.OpReLUConv:
		dx, dw, err := kernels.ReLUConvBackward(e.convOf(n), dy, e.in(n, 0), e.Params[n.Name+".w"])
		if err != nil {
			return err
		}
		if synth {
			e.alloc.Put(dy)
		}
		grads[n.Name+".w"] = dw
		return e.accumGrad(gmap, n.Inputs[0], dx)

	case graph.OpBNReLUConv:
		dv, dw, dgamma, dbeta, err := kernels.FusedConvBackwardReLUBNReduce(e.convOf(n), e.bnOf(n),
			dy, e.xhats[n.ID], e.gamma(n), e.beta(n), e.Params[n.Name+".w"])
		if err != nil {
			return err
		}
		if synth {
			e.alloc.Put(dy)
		}
		grads[n.Name+".w"] = dw
		grads[n.BN.ParamName+".gamma"] = dgamma
		grads[n.BN.ParamName+".beta"] = dbeta
		sg, sb := dgamma, dbeta
		if e.bnReduceHook != nil {
			if sg, sb, err = e.bnReduceHook(n, dgamma, dbeta); err != nil {
				return err
			}
		}
		stash[n.StatsFrom.ID] = &bnStash{dv: dv, xhat: e.xhats[n.ID], dgamma: sg, dbeta: sb}
		return nil

	case graph.OpPool:
		ctx := e.poolCtx[n.ID]
		dx, err := n.Pool.WithPool(e.pool).WithAlloc(e.alloc).Backward(dy, ctx)
		if err != nil {
			return err
		}
		if e.alloc != nil && ctx != nil {
			// The argmax scatter indices die with this step.
			e.alloc.PutInts(ctx.ArgMax)
			delete(e.poolCtx, n.ID)
		}
		return e.accumGrad(gmap, n.Inputs[0], dx)

	case graph.OpGlobalPool:
		dx, err := layers.GlobalAvgPoolBackwardAlloc(e.pool, e.alloc, dy, n.Inputs[0].OutShape)
		if err != nil {
			return err
		}
		return e.accumGrad(gmap, n.Inputs[0], dx)

	case graph.OpFC:
		dx, dw, db, err := n.FC.WithPool(e.pool).WithAlloc(e.alloc).Backward(dy, e.in(n, 0), e.Params[n.Name+".w"])
		if err != nil {
			return err
		}
		grads[n.Name+".w"] = dw
		grads[n.Name+".b"] = db
		return e.accumGrad(gmap, n.Inputs[0], dx)

	case graph.OpConcat:
		channels := make([]int, len(n.Inputs))
		for i, in := range n.Inputs {
			channels[i] = in.OutShape[1]
		}
		parts, err := layers.ConcatBackwardAlloc(e.alloc, dy, channels)
		if err != nil {
			return err
		}
		for i, p := range parts {
			if err := e.accumGrad(gmap, n.Inputs[i], p); err != nil {
				return err
			}
		}
		return nil

	case graph.OpEWS:
		da, db := layers.EWSBackwardAlloc(e.alloc, dy)
		if err := e.accumGrad(gmap, n.Inputs[0], da); err != nil {
			return err
		}
		return e.accumGrad(gmap, n.Inputs[1], db)

	case graph.OpFlatten:
		dx, err := dy.Reshape(n.Inputs[0].OutShape...)
		if err != nil {
			return err
		}
		return e.accumGrad(gmap, n.Inputs[0], e.alloc.Clone(dx))

	case graph.OpDropout:
		dx, err := n.Dropout.BackwardAlloc(e.alloc, dy, e.masks[n.ID])
		if err != nil {
			return err
		}
		return e.accumGrad(gmap, n.Inputs[0], dx)

	default:
		return fmt.Errorf("executor cannot differentiate kind %v", n.Kind)
	}
}
