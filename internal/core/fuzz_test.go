package core

import (
	"bytes"
	"fmt"
	"testing"

	"bnff/internal/graph"
	"bnff/internal/layers"
	"bnff/internal/tensor"
)

// randomGraph builds a random but valid CNN: a chain of conv/BN/ReLU/pool
// segments with occasional concat and element-wise-sum joins, ending in a
// classifier head. It deliberately produces every adjacency the passes must
// reason about — BN after conv, BN after concat, BN feeding non-ReLU
// consumers, ReLU feeding pool, fan-out feature maps — so the fuzz test
// exercises corners the hand-built models miss.
func randomGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	rng := tensor.NewRNG(seed)
	g := graph.New(fmt.Sprintf("fuzz-%d", seed))
	cur := g.Input("input", tensor.Shape{2, 3, 8, 8})
	channels, size := 3, 8
	var stash *graph.Node // an earlier map for concat joins
	id := 0
	name := func(prefix string) string {
		id++
		return fmt.Sprintf("%s%d", prefix, id)
	}

	segments := 4 + rng.Intn(5)
	for i := 0; i < segments; i++ {
		switch rng.Intn(6) {
		case 0, 1: // conv (possibly followed by BN and/or ReLU below)
			out := 2 + rng.Intn(6)
			k := 1 + 2*rng.Intn(2) // 1 or 3
			c, err := g.Conv(name("conv"), cur, layers.NewConv2D(channels, out, k, 1, k/2), i)
			if err != nil {
				t.Fatal(err)
			}
			cur, channels = c, out
		case 2: // bn
			b, err := g.BN(name("bn"), cur, i)
			if err != nil {
				t.Fatal(err)
			}
			cur = b
		case 3: // relu
			cur = g.ReLU(name("relu"), cur, i)
		case 4: // pool, if still large enough
			if size >= 4 {
				p, err := g.Pool(name("pool"), cur, layers.Pool2D{Kernel: 2, Stride: 2, Max: rng.Intn(2) == 0}, i)
				if err != nil {
					t.Fatal(err)
				}
				cur, size = p, size/2
			}
		case 5: // join with the stash if compatible, else stash this map
			if stash != nil && stash.OutShape.Equal(cur.OutShape) && rng.Intn(2) == 0 {
				e, err := g.EWS(name("ews"), cur, stash, i)
				if err != nil {
					t.Fatal(err)
				}
				cur, stash = e, nil
			} else if stash != nil && stash.OutShape[2] == size && rng.Intn(2) == 0 {
				c, err := g.Concat(name("cat"), i, cur, stash)
				if err != nil {
					t.Fatal(err)
				}
				cur, channels, stash = c, c.OutShape[1], nil
			} else {
				stash = cur
			}
		}
	}

	gap, err := g.GlobalPool("gap", cur, -1)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := g.FC("fc", gap, layers.FC{In: channels, Out: 3}, -1)
	if err != nil {
		t.Fatal(err)
	}
	g.Output = fc
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFuzzRestructureEquivalence restructures dozens of random graphs under
// every scenario and checks structural validity plus numeric forward and
// backward equivalence against the baseline.
func TestFuzzRestructureEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		baseG := randomGraph(t, seed)
		baseExec, err := NewExecutor(baseG, WithSeed(seed+100))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := tensor.New(2, 3, 8, 8)
		tensor.NewRNG(seed+200).FillNormal(in, 0, 1)
		baseOut, err := baseExec.Forward(in)
		if err != nil {
			t.Fatalf("seed %d baseline forward: %v", seed, err)
		}
		dOut := tensor.New(baseOut.Shape()...)
		tensor.NewRNG(seed+300).FillUniform(dOut, -1, 1)
		baseGrads, err := baseExec.Backward(dOut)
		if err != nil {
			t.Fatalf("seed %d baseline backward: %v", seed, err)
		}

		for _, s := range Scenarios()[1:] {
			g := randomGraph(t, seed) // same seed → identical structure
			if err := Restructure(g, s.Options()); err != nil {
				t.Fatalf("seed %d %v: %v", seed, s, err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d %v post-validate: %v", seed, s, err)
			}
			ex, err := NewExecutor(g, WithSeed(1))
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, s, err)
			}
			if err := ex.CopyParamsFrom(baseExec); err != nil {
				t.Fatalf("seed %d %v: %v", seed, s, err)
			}
			out, err := ex.Forward(in)
			if err != nil {
				t.Fatalf("seed %d %v forward: %v", seed, s, err)
			}
			if !tensor.AllClose(baseOut, out, 1e-3, 1e-3) {
				d, _ := tensor.MaxAbsDiff(baseOut, out)
				t.Errorf("seed %d %v: logits differ by %v", seed, s, d)
			}
			grads, err := ex.Backward(dOut)
			if err != nil {
				t.Fatalf("seed %d %v backward: %v", seed, s, err)
			}
			for pname, bg := range baseGrads {
				gg := grads[pname]
				if gg == nil {
					t.Fatalf("seed %d %v: missing gradient %q", seed, s, pname)
				}
				if !tensor.AllClose(bg, gg, 2e-2, 2e-3) {
					d, _ := tensor.MaxAbsDiff(bg, gg)
					t.Errorf("seed %d %v: gradient %q differs by %v", seed, s, pname, d)
				}
			}
		}
	}
}

// TestFuzzSerializeRoundTrip: random restructured graphs survive the text
// format with identical cost totals.
func TestFuzzSerializeRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := randomGraph(t, seed)
		if err := Restructure(g, BNFFICF.Options()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.Serialize(&buf); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := graph.Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d parse: %v\n%s", seed, err, buf.String())
		}
		sumOf := func(g *graph.Graph) (int64, int64) {
			costs, err := g.TrainingCosts()
			if err != nil {
				t.Fatal(err)
			}
			var b, f int64
			for _, c := range costs {
				b += c.TotalBytes()
				f += c.FLOPs
			}
			return b, f
		}
		b1, f1 := sumOf(g)
		b2, f2 := sumOf(back)
		if b1 != b2 || f1 != f2 {
			t.Errorf("seed %d: costs changed after round trip", seed)
		}
	}
}

// TestFuzzSweepNeverIncreases: no restructuring scenario may increase total
// feature-map traffic on any random graph.
func TestFuzzSweepNeverIncreases(t *testing.T) {
	total := func(g *graph.Graph) int64 {
		costs, err := g.TrainingCosts()
		if err != nil {
			t.Fatal(err)
		}
		var b int64
		for _, c := range costs {
			for _, sw := range c.Sweeps {
				if sw.Kind == graph.SweepFeatureMap {
					b += sw.Bytes
				}
			}
		}
		return b
	}
	for seed := uint64(0); seed < 40; seed++ {
		base := total(randomGraph(t, seed))
		for _, s := range Scenarios()[1:] {
			g := randomGraph(t, seed)
			if err := Restructure(g, s.Options()); err != nil {
				t.Fatal(err)
			}
			if got := total(g); got > base {
				t.Errorf("seed %d %v increased traffic: %d > %d", seed, s, got, base)
			}
		}
	}
}
