package core

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"bnff/internal/models"
	"bnff/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	g, err := models.TinyCNN(2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewExecutor(g, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	// Perturb running stats so they are non-trivial.
	for _, r := range src.Running {
		tensor.NewRNG(3).FillUniform(r, 0, 2)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	g2, err := models.TinyCNN(2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewExecutor(g2, WithSeed(99)) // different init
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for name, p := range src.Params {
		if d, _ := tensor.MaxAbsDiff(p, dst.Params[name]); d != 0 {
			t.Errorf("parameter %q not restored exactly (diff %v)", name, d)
		}
	}
	for name, r := range src.Running {
		if d, _ := tensor.MaxAbsDiff(r, dst.Running[name]); d != 0 {
			t.Errorf("running stat %q not restored exactly (diff %v)", name, d)
		}
	}
}

// A checkpoint written by a baseline executor must load into a BNFF
// executor — the parameter-name stability the restructuring guarantees.
func TestCheckpointAcrossRestructuring(t *testing.T) {
	gBase, _ := models.TinyDenseNet(2)
	base, err := NewExecutor(gBase, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := base.Save(&buf); err != nil {
		t.Fatal(err)
	}

	gBNFF, _ := models.TinyDenseNet(2)
	if err := Restructure(gBNFF, BNFF.Options()); err != nil {
		t.Fatal(err)
	}
	fused, err := NewExecutor(gBNFF, WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := fused.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Outputs must now match the baseline's.
	in := tensor.New(2, 3, 16, 16)
	tensor.NewRNG(5).FillNormal(in, 0, 1)
	yBase, err := base.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	yFused, err := fused.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(yBase, yFused, 1e-3, 1e-3) {
		t.Error("checkpoint-restored BNFF executor diverges from baseline")
	}
}

func TestCheckpointRejectsWrongModel(t *testing.T) {
	g1, _ := models.TinyCNN(2, 8, 4)
	e1, err := NewExecutor(g1, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, _ := models.TinyResNet(2)
	e2, err := NewExecutor(g2, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("loaded a checkpoint from a different model")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	g, _ := models.TinyCNN(2, 8, 4)
	e, err := NewExecutor(g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if err := e.Load(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	// Truncated.
	if err := e.Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("accepted truncated checkpoint")
	}
	// Bad version.
	bad = append([]byte{}, data...)
	bad[4] = 0xFF
	if err := e.Load(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad version")
	}
	// Empty stream.
	if err := e.Load(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty stream")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bnff")
	g, _ := models.TinyCNN(2, 8, 4)
	e, err := NewExecutor(g, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, _ := models.TinyCNN(2, 8, 4)
	e2, err := NewExecutor(g2, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	for name, p := range e.Params {
		if d, _ := tensor.MaxAbsDiff(p, e2.Params[name]); d != 0 {
			t.Errorf("file round trip changed %q", name)
		}
	}
	if err := e2.LoadFile(filepath.Join(dir, "missing.bnff")); err == nil {
		t.Error("loaded a missing file")
	}
}

// TestSaveFileCrashSafety injects a mid-write failure into the atomic save
// machinery and asserts the previous checkpoint at the target path survives
// byte-identical, with no temporary files left behind.
func TestSaveFileCrashSafety(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bnff")
	g, _ := models.TinyCNN(2, 8, 4)
	e, err := NewExecutor(g, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A save that emits half a header and then dies mid-write.
	boom := errors.New("injected mid-write failure")
	err = saveFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("BNFF\x01\x00")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("saveFileAtomic error = %v, want injected failure", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("previous checkpoint gone after failed save: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save corrupted the previous checkpoint")
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("temporary files left behind: %v", names)
	}
	// The surviving checkpoint still loads.
	if err := e.LoadFile(path); err != nil {
		t.Errorf("surviving checkpoint no longer loads: %v", err)
	}
}

// TestSaveLoadSaveByteIdentical: serialization is a pure function of the
// model state, so a load/save cycle reproduces the exact bytes — the
// property resumable training relies on when it re-checkpoints.
func TestSaveLoadSaveByteIdentical(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.bnff")
	p2 := filepath.Join(dir, "b.bnff")
	g, _ := models.TinyDenseNet(2)
	e, err := NewExecutor(g, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range e.Running {
		tensor.NewRNG(13).FillUniform(r, 0, 2)
	}
	if err := e.SaveFile(p1); err != nil {
		t.Fatal(err)
	}
	g2, _ := models.TinyDenseNet(2)
	e2, err := NewExecutor(g2, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.LoadFile(p1); err != nil {
		t.Fatal(err)
	}
	if err := e2.SaveFile(p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("save -> load -> save is not byte-identical")
	}
}
