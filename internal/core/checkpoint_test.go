package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"bnff/internal/models"
	"bnff/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	g, err := models.TinyCNN(2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewExecutor(g, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	// Perturb running stats so they are non-trivial.
	for _, r := range src.Running {
		tensor.NewRNG(3).FillUniform(r, 0, 2)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	g2, err := models.TinyCNN(2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewExecutor(g2, WithSeed(99)) // different init
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for name, p := range src.Params {
		if d, _ := tensor.MaxAbsDiff(p, dst.Params[name]); d != 0 {
			t.Errorf("parameter %q not restored exactly (diff %v)", name, d)
		}
	}
	for name, r := range src.Running {
		if d, _ := tensor.MaxAbsDiff(r, dst.Running[name]); d != 0 {
			t.Errorf("running stat %q not restored exactly (diff %v)", name, d)
		}
	}
}

// A checkpoint written by a baseline executor must load into a BNFF
// executor — the parameter-name stability the restructuring guarantees.
func TestCheckpointAcrossRestructuring(t *testing.T) {
	gBase, _ := models.TinyDenseNet(2)
	base, err := NewExecutor(gBase, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := base.Save(&buf); err != nil {
		t.Fatal(err)
	}

	gBNFF, _ := models.TinyDenseNet(2)
	if err := Restructure(gBNFF, BNFF.Options()); err != nil {
		t.Fatal(err)
	}
	fused, err := NewExecutor(gBNFF, WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := fused.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Outputs must now match the baseline's.
	in := tensor.New(2, 3, 16, 16)
	tensor.NewRNG(5).FillNormal(in, 0, 1)
	yBase, err := base.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	yFused, err := fused.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(yBase, yFused, 1e-3, 1e-3) {
		t.Error("checkpoint-restored BNFF executor diverges from baseline")
	}
}

func TestCheckpointRejectsWrongModel(t *testing.T) {
	g1, _ := models.TinyCNN(2, 8, 4)
	e1, err := NewExecutor(g1, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, _ := models.TinyResNet(2)
	e2, err := NewExecutor(g2, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("loaded a checkpoint from a different model")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	g, _ := models.TinyCNN(2, 8, 4)
	e, err := NewExecutor(g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if err := e.Load(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	// Truncated.
	if err := e.Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("accepted truncated checkpoint")
	}
	// Bad version.
	bad = append([]byte{}, data...)
	bad[4] = 0xFF
	if err := e.Load(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad version")
	}
	// Empty stream.
	if err := e.Load(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty stream")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bnff")
	g, _ := models.TinyCNN(2, 8, 4)
	e, err := NewExecutor(g, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, _ := models.TinyCNN(2, 8, 4)
	e2, err := NewExecutor(g2, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	for name, p := range e.Params {
		if d, _ := tensor.MaxAbsDiff(p, e2.Params[name]); d != 0 {
			t.Errorf("file round trip changed %q", name)
		}
	}
	if err := e2.LoadFile(filepath.Join(dir, "missing.bnff")); err == nil {
		t.Error("loaded a missing file")
	}
}
