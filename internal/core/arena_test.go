package core

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"bnff/internal/memplan"
	"bnff/internal/models"
	"bnff/internal/obs"
	"bnff/internal/tensor"
)

func bitEqual(a, b *tensor.Tensor) bool {
	if !a.Shape().Equal(b.Shape()) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestArenaBitIdentical is the arena's correctness contract: with the arena
// on, every forward output and every parameter gradient is bit-identical to
// the legacy allocation path — across the tiny model registry, for both the
// baseline and fully restructured graphs, serial and pooled, and across
// repeated iterations (the second iteration is the one that actually
// exercises recycled buffers). It also asserts the leak invariant: after a
// complete forward+backward, every arena buffer has been returned.
func TestArenaBitIdentical(t *testing.T) {
	const iters = 3
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			if !strings.HasPrefix(name, "tiny-") {
				t.Skipf("%s is analytical-only; numeric equivalence runs on tiny-* models", name)
			}
			for _, scen := range []Scenario{Baseline, BNFF} {
				for _, workers := range []int{1, 4} {
					t.Run(fmt.Sprintf("%v/workers=%d", scen, workers), func(t *testing.T) {
						g, err := models.Build(name, 6)
						if err != nil {
							t.Fatal(err)
						}
						if err := Restructure(g, scen.Options()); err != nil {
							t.Fatal(err)
						}
						legacy, err := NewExecutor(g, WithSeed(42), WithWorkers(workers))
						if err != nil {
							t.Fatal(err)
						}
						arena, err := NewExecutor(g, WithSeed(42), WithWorkers(workers), WithArena())
						if err != nil {
							t.Fatal(err)
						}
						if !arena.ArenaEnabled() || legacy.ArenaEnabled() {
							t.Fatal("WithArena wiring broken")
						}
						in := tensor.New(g.Nodes[0].OutShape...)
						tensor.NewRNG(3).FillNormal(in, 0, 1)
						for it := 0; it < iters; it++ {
							outL, err := legacy.Forward(in)
							if err != nil {
								t.Fatal(err)
							}
							outA, err := arena.Forward(in)
							if err != nil {
								t.Fatal(err)
							}
							if !bitEqual(outL, outA) {
								t.Fatalf("iteration %d: arena-on forward output differs", it)
							}
							dOut := tensor.New(outL.Shape()...)
							tensor.NewRNG(5).FillUniform(dOut, -1, 1)
							gradsL, err := legacy.Backward(dOut)
							if err != nil {
								t.Fatal(err)
							}
							gradsA, err := arena.Backward(dOut)
							if err != nil {
								t.Fatal(err)
							}
							if len(gradsL) != len(gradsA) {
								t.Fatalf("iteration %d: gradient maps differ in size", it)
							}
							for k, gl := range gradsL {
								ga := gradsA[k]
								if ga == nil {
									t.Fatalf("iteration %d: arena-on missing gradient %q", it, k)
								}
								if !bitEqual(gl, ga) {
									t.Fatalf("iteration %d: gradient %q differs", it, k)
								}
							}
							if inUse := arena.ArenaStats().BytesInUse; inUse != 0 {
								t.Fatalf("iteration %d: %d bytes still checked out after backward (leak)", it, inUse)
							}
						}
						s := arena.ArenaStats()
						if s.Hits == 0 {
							t.Error("repeated iterations never hit the free lists")
						}
						if s.PeakBytes == 0 || s.Misses == 0 {
							t.Errorf("implausible arena stats: %+v", s)
						}
					})
				}
			}
		})
	}
}

// TestArenaInferenceBitIdentical covers the inference path, whose lifetimes
// differ (dropout aliases its input, so per-step releases are skipped and
// buffers recycle at the next pass boundary).
func TestArenaInferenceBitIdentical(t *testing.T) {
	for _, name := range []string{"tiny-cnn", "tiny-densenet"} {
		t.Run(name, func(t *testing.T) {
			g, err := models.Build(name, 4)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := NewExecutor(g, WithSeed(9), WithInference())
			if err != nil {
				t.Fatal(err)
			}
			arena, err := NewExecutor(g, WithSeed(9), WithInference(), WithArena())
			if err != nil {
				t.Fatal(err)
			}
			in := tensor.New(g.Nodes[0].OutShape...)
			tensor.NewRNG(11).FillNormal(in, 0, 1)
			for it := 0; it < 3; it++ {
				outL, err := legacy.Forward(in)
				if err != nil {
					t.Fatal(err)
				}
				outA, err := arena.Forward(in)
				if err != nil {
					t.Fatal(err)
				}
				if !bitEqual(outL, outA) {
					t.Fatalf("iteration %d: inference output differs with arena on", it)
				}
			}
		})
	}
}

// TestArenaPeakWithinPredicted ties the measured footprint to the analytical
// one: the arena's high-water mark on a real training iteration must land
// within 2× of memplan's predicted activation peak (the arena additionally
// carries layer scratch, statistics vectors, and argmax indices the
// analytical plan does not model, and per-buffer reuse can round sizes up).
func TestArenaPeakWithinPredicted(t *testing.T) {
	for _, scen := range []Scenario{Baseline, BNFF} {
		t.Run(scen.String(), func(t *testing.T) {
			g, err := models.TinyDenseNet(16)
			if err != nil {
				t.Fatal(err)
			}
			if err := Restructure(g, scen.Options()); err != nil {
				t.Fatal(err)
			}
			plan, err := memplan.PlanTraining(g)
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			exec, err := NewExecutor(g, WithSeed(1), WithArena(), WithMetrics(reg))
			if err != nil {
				t.Fatal(err)
			}
			in := tensor.New(g.Nodes[0].OutShape...)
			tensor.NewRNG(2).FillNormal(in, 0, 1)
			for it := 0; it < 2; it++ {
				out, err := exec.Forward(in)
				if err != nil {
					t.Fatal(err)
				}
				dOut := tensor.New(out.Shape()...)
				dOut.Fill(1)
				if _, err := exec.Backward(dOut); err != nil {
					t.Fatal(err)
				}
			}
			measured := exec.ArenaStats().PeakBytes
			predicted := plan.PeakBytes
			t.Logf("%s: measured arena peak %.2f MB, memplan predicted %.2f MB (%.2fx)",
				scen, float64(measured)/1e6, float64(predicted)/1e6, float64(measured)/float64(predicted))
			if measured < predicted {
				t.Errorf("measured peak %d below the modeled lower bound %d — the plan should undercount scratch, not overcount", measured, predicted)
			}
			if measured > 2*predicted {
				t.Errorf("measured peak %d exceeds 2x the predicted %d", measured, predicted)
			}
			if got := reg.Gauge("arena_peak_bytes").Value(); got != measured {
				t.Errorf("arena_peak_bytes gauge = %d, want %d", got, measured)
			}
			if reg.Gauge("arena_hits").Value() == 0 {
				t.Error("arena_hits gauge never published")
			}
		})
	}
}

// TestArenaForwardAllocBudget is the allocation-regression guard: the
// steady-state per-step heap allocation count of an arena-on tiny-densenet
// forward must stay at or below the committed budget
// (testdata/arena_alloc_budget.txt), and at least 10x below the arena-off
// path. CI runs this in the bench job; raising the budget is a reviewed
// change to the committed file, not a silent drift.
func TestArenaForwardAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("testing.AllocsPerRun is unreliable under the race detector")
	}
	raw, err := os.ReadFile("testdata/arena_alloc_budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("parsing committed budget: %v", err)
	}
	build := func(opts ...Option) (*Executor, *tensor.Tensor) {
		g, err := models.TinyDenseNet(4)
		if err != nil {
			t.Fatal(err)
		}
		if err := Restructure(g, BNFF.Options()); err != nil {
			t.Fatal(err)
		}
		exec, err := NewExecutor(g, append([]Option{WithSeed(1)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		in := tensor.New(g.Nodes[0].OutShape...)
		tensor.NewRNG(2).FillNormal(in, 0, 1)
		if _, err := exec.Forward(in); err != nil { // warm the free lists
			t.Fatal(err)
		}
		return exec, in
	}
	arena, inA := build(WithArena())
	on := testing.AllocsPerRun(5, func() {
		if _, err := arena.Forward(inA); err != nil {
			t.Fatal(err)
		}
	})
	legacy, inL := build()
	off := testing.AllocsPerRun(5, func() {
		if _, err := legacy.Forward(inL); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("tiny-densenet forward allocs/step: arena-on %.0f, arena-off %.0f (%.1fx), budget %.0f",
		on, off, off/on, budget)
	if on > budget {
		t.Errorf("arena-on forward allocates %.0f per step, budget is %.0f (testdata/arena_alloc_budget.txt)", on, budget)
	}
	if off < 10*on {
		t.Errorf("arena reduces allocs only %.1fx (on=%.0f off=%.0f), want >= 10x", off/on, on, off)
	}
}

// benchArenaStep is the shared body of the arena on/off benchmark pair:
// tiny-densenet BNFF at one worker, forward only or a full training step.
// The pair quantifies the tentpole claim — steady-state per-step heap
// allocations with the arena on versus the legacy allocation path (compare
// allocs/op between On and Off).
func benchArenaStep(b *testing.B, backward bool, opts ...Option) {
	g, err := models.TinyDenseNet(4)
	if err != nil {
		b.Fatal(err)
	}
	if err := Restructure(g, BNFF.Options()); err != nil {
		b.Fatal(err)
	}
	exec, err := NewExecutor(g, append([]Option{WithSeed(1), WithWorkers(1)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	in := tensor.New(g.Nodes[0].OutShape...)
	tensor.NewRNG(2).FillNormal(in, 0, 1)
	dOut := tensor.New(g.Output.OutShape...)
	dOut.Fill(1)
	step := func() {
		if _, err := exec.Forward(in); err != nil {
			b.Fatal(err)
		}
		if backward {
			if _, err := exec.Backward(dOut); err != nil {
				b.Fatal(err)
			}
		}
	}
	step() // warm the free lists
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

func BenchmarkForwardArenaOff(b *testing.B)   { benchArenaStep(b, false) }
func BenchmarkForwardArenaOn(b *testing.B)    { benchArenaStep(b, false, WithArena()) }
func BenchmarkTrainStepArenaOff(b *testing.B) { benchArenaStep(b, true) }
func BenchmarkTrainStepArenaOn(b *testing.B)  { benchArenaStep(b, true, WithArena()) }
