package core

import (
	"bnff/internal/graph"
	"bnff/internal/obs"
)

// WithTracer attaches a span tracer at construction. Forward and Backward
// then record one span per live node — Cat and TID from graph.LayerClass,
// exactly the buckets and Chrome-trace tracks internal/memsim's modeled
// traces use — plus a pass-envelope span (obs.CatPass), and the executor's
// worker pool records dispatch/drain spans (obs.CatPool) on concurrent runs.
// A nil tracer is the default: the instrumented paths cost a nil check and
// allocate nothing (see trace_test.go).
func WithTracer(t *obs.Tracer) Option { return func(e *Executor) { e.tracer = t } }

// SetTracer attaches (or, with nil, detaches) the tracer after construction,
// rethreading it through the worker pool. Safe between passes; must not be
// called while Forward or Backward runs.
func (e *Executor) SetTracer(t *obs.Tracer) {
	e.tracer = t
	e.pool = e.pool.WithTracer(t)
}

// Tracer returns the attached tracer, nil when tracing is disabled.
func (e *Executor) Tracer() *obs.Tracer { return e.tracer }

// endNodeSpan closes a node's span: category and track from the node's layer
// class so measured traces aggregate into the same Figure-1 buckets as
// memsim's predictions. The nil-tracer path returns before touching the node.
func (e *Executor) endNodeSpan(n *graph.Node, dir string, start int64) {
	if e.tracer == nil {
		return
	}
	cls := n.Class()
	e.tracer.End(n.Name, cls.String(), dir, int(cls)+1, start)
}
