package core

import (
	"testing"

	"bnff/internal/models"
	"bnff/internal/tensor"
)

// The paper's §3.2 precision discussion: single-precision E(X²) suffices,
// and the float64 fallback must track a two-pass (baseline) reference at
// least as closely as float32 does.
func TestPreciseStatsTracksBaselineTighter(t *testing.T) {
	build := func() *Executor {
		g, err := models.TinyDenseNet(4)
		if err != nil {
			t.Fatal(err)
		}
		if err := Restructure(g, BNFF.Options()); err != nil {
			t.Fatal(err)
		}
		ex, err := NewExecutor(g, WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		return ex
	}
	gBase, err := models.TinyDenseNet(4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewExecutor(gBase, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}

	fused32 := build()
	fused64 := build()
	fused64.preciseStats = true
	if err := fused32.CopyParamsFrom(base); err != nil {
		t.Fatal(err)
	}
	if err := fused64.CopyParamsFrom(base); err != nil {
		t.Fatal(err)
	}

	// Shift activations far from zero — the adversarial regime for E(X²).
	in := tensor.New(4, 3, 16, 16)
	tensor.NewRNG(7).FillNormal(in, 8, 0.05)

	yBase, err := base.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	y32, err := fused32.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	y64, err := fused64.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	d32, _ := tensor.MaxAbsDiff(yBase, y32)
	d64, _ := tensor.MaxAbsDiff(yBase, y64)
	if d64 > d32*1.5 {
		t.Errorf("float64 MVF drift %v exceeds float32 drift %v", d64, d32)
	}
	// Both must still be functionally equivalent to the baseline.
	if !tensor.AllClose(yBase, y64, 1e-3, 1e-3) {
		t.Errorf("precise-stats logits diverge from baseline by %v", d64)
	}
}

func TestPreciseStatsBackwardWorks(t *testing.T) {
	g, err := models.TinyCNN(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Restructure(g, BNFF.Options()); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(g, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ex.preciseStats = true
	in := tensor.New(4, 3, 8, 8)
	tensor.NewRNG(5).FillNormal(in, 0, 1)
	y, err := ex.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	dOut := tensor.New(y.Shape()...)
	dOut.Fill(0.1)
	if _, err := ex.Backward(dOut); err != nil {
		t.Fatal(err)
	}
}
