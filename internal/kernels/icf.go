package kernels

import (
	"fmt"

	"bnff/internal/layers"
	"bnff/internal/tensor"
)

// This file implements Inter-Composite-layer Fusion (ICF) numerically — the
// part of the paper left as future work ("We estimate additional performance
// enhancement enabled by ICF, leaving implementation for future work").
// ICF extends the fission result across composite-layer boundaries: a
// boundary BN's statistics sub-layer fuses with the Concat that produces its
// input, and its backward input-gradient sub-layer fuses with the Split
// gradient reduction on the same boundary.

// ConcatForwardStats concatenates the inputs along the channel axis and, in
// the same pass that writes each output element, accumulates the per-channel
// Σx and Σx² of the result (MVF) — the ICF forward fusion. The boundary BN's
// statistics therefore cost no sweep beyond the Concat's own copy.
func ConcatForwardStats(bn layers.BatchNorm, xs ...*tensor.Tensor) (*tensor.Tensor, *layers.BNStats, error) {
	if len(xs) == 0 {
		return nil, nil, fmt.Errorf("kernels: concat-stats with no inputs")
	}
	n, _, h, w := xs[0].Dims4()
	totalC := 0
	for _, x := range xs {
		xn, xc, xh, xw := x.Dims4()
		if xn != n || xh != h || xw != w {
			return nil, nil, fmt.Errorf("kernels: concat-stats incompatible input %v vs %v", x.Shape(), xs[0].Shape())
		}
		totalC += xc
	}
	if totalC != bn.Channels {
		return nil, nil, fmt.Errorf("kernels: concat produces %d channels, BN expects %d", totalC, bn.Channels)
	}
	a := bn.Alloc()
	y := a.Get(n, totalC, h, w)
	sum := a.Floats(totalC)
	sumsq := a.Floats(totalC)
	hw := h * w
	// Samples split on the BN's pool; copies are per-sample disjoint and the
	// per-sample Σx/Σx² partials are reduced in sample order below, matching
	// the serial accumulation order bit for bit. Scratch comes from the BN's
	// arena on the dispatching goroutine (workers never touch the arena).
	psum := a.Floats(n * totalC)
	psumsq := a.Floats(n * totalC)
	bn.Pool().Run(n, func(nLo, nHi int) {
		for in := nLo; in < nHi; in++ {
			cOff := 0
			for _, x := range xs {
				xc := x.Dim(1)
				for ic := 0; ic < xc; ic++ {
					src := x.Data[(in*xc+ic)*hw : (in*xc+ic+1)*hw]
					dst := y.Data[(in*totalC+cOff+ic)*hw : (in*totalC+cOff+ic+1)*hw]
					var s, sq float32
					for i, v := range src {
						dst[i] = v
						s += v
						sq += v * v
					}
					psum[in*totalC+cOff+ic] = s
					psumsq[in*totalC+cOff+ic] = sq
				}
				cOff += xc
			}
		}
	})
	// det-reduce: per-sample Σx/Σx² partials over the concatenated channels,
	// combined in sample order — bit-identical to the serial sweep.
	for in := 0; in < n; in++ {
		for ic := 0; ic < totalC; ic++ {
			sum[ic] += psum[in*totalC+ic]
			sumsq[ic] += psumsq[in*totalC+ic]
		}
	}
	m := float32(n * hw)
	mean := a.Get(totalC)
	variance := a.Get(totalC)
	for ic := 0; ic < totalC; ic++ {
		mu := sum[ic] / m
		mean.Data[ic] = mu
		v := sumsq[ic]/m - mu*mu
		if v < 0 {
			v = 0
		}
		variance.Data[ic] = v
	}
	a.PutFloats(psumsq)
	a.PutFloats(psum)
	a.PutFloats(sumsq)
	a.PutFloats(sum)
	return y, &layers.BNStats{Mean: mean, Var: variance, M: n * hw}, nil
}

// FusedSplitBNInputBackward is the ICF backward fusion: the boundary BN's
// element-wise input gradient
//
//	du = γ·invstd/M · (M·dv − dβ − x̂·dγ)
//
// is produced in the same sweep that performs the Split gradient reduction
// (summing the other consumers' gradient maps), so du never makes a
// standalone round trip. others may be empty (fan-out of one).
func FusedSplitBNInputBackward(bn layers.BatchNorm, dv, xhat, gamma *tensor.Tensor,
	stats *layers.BNStats, dgamma, dbeta *tensor.Tensor, others []*tensor.Tensor) (*tensor.Tensor, error) {
	if dv.Rank() != 4 || dv.Dim(1) != bn.Channels {
		return nil, fmt.Errorf("kernels: dv %v, want rank 4 with %d channels", dv.Shape(), bn.Channels)
	}
	if !dv.Shape().Equal(xhat.Shape()) {
		return nil, fmt.Errorf("kernels: dv %v vs xhat %v", dv.Shape(), xhat.Shape())
	}
	for i, o := range others {
		if !o.Shape().Equal(dv.Shape()) {
			return nil, fmt.Errorf("kernels: split contribution %d shape %v vs %v", i, o.Shape(), dv.Shape())
		}
	}
	n, c, h, w := dv.Dims4()
	m := float32(n * h * w)
	a := bn.Alloc()
	inv := bn.InvStdScratch(stats)
	out := a.Get(dv.Shape()...)
	bn.Pool().Run(n, func(nLo, nHi int) {
		for in := nLo; in < nHi; in++ {
			for ic := 0; ic < c; ic++ {
				base := (in*c + ic) * h * w
				coef := gamma.Data[ic] * inv[ic] / m
				dg, db := dgamma.Data[ic], dbeta.Data[ic]
				for i := 0; i < h*w; i++ {
					du := coef * (m*dv.Data[base+i] - db - xhat.Data[base+i]*dg)
					acc := du
					for _, o := range others {
						acc += o.Data[base+i]
					}
					out.Data[base+i] = acc
				}
			}
		}
	})
	a.PutFloats(inv)
	return out, nil
}
