// Package kernels implements the fused numeric kernels that BN
// Fission-n-Fusion substitutes for baseline layer sequences:
//
//   - ConvForwardStats — CONV1-(sub-BN1): the convolution accumulates Σx and
//     Σx² of its own outputs per channel while writing them, then closes the
//     statistics with the MVF identity V(X) = E(X²) − E(X)². One sweep
//     instead of three (paper Figure 5a: O1, I2, I3 → O1').
//
//   - FusedBNReLUConvForward — (sub-BN2)-ReLU-CONV2: normalization and ReLU
//     clipping are applied while the following convolution reads its ifmap.
//     The normalized map x̂ is written once (Figure 5a's O2') because the
//     backward pass re-reads it; everything else stays in registers.
//
//   - ReLUConvForward — RCF alone: ReLU applied on the CONV ifmap read,
//     for the RCF-only evaluation scenario.
//
//   - FusedConvBackwardReLUBNReduce — CONV2-ReLU-(sub-BN2') backward: the
//     convolution's backward-data pass regenerates its saved ifmap from x̂
//     (so z=ReLU(γx̂+β) is never stored), applies the ReLU mask inline, and
//     accumulates dγ/dβ in the same sweep that writes BN's upstream gradient.
//
//   - FusedBNInputConvBackward — (sub-BN1')-CONV1 backward: BN's element-wise
//     input gradient is produced in the same pass that feeds CONV1's backward.
//
// Every kernel is bit-compatible (to float32 round-off) with the baseline
// composition in internal/layers; internal/core's equivalence tests enforce
// this, which is the paper's correctness claim for the restructuring.
package kernels

import (
	"fmt"

	"bnff/internal/layers"
	"bnff/internal/tensor"
)

// ConvForwardStats computes y = conv(x, w) and, in the same output sweep,
// the per-channel mini-batch statistics of y via the MVF identity. The
// accumulators are float32, mirroring the paper's observation that single
// precision suffices for E(X²) on activation-scale data.
func ConvForwardStats(conv layers.Conv2D, x, w *tensor.Tensor) (*tensor.Tensor, *layers.BNStats, error) {
	y, err := conv.Forward(x, w)
	if err != nil {
		return nil, nil, err
	}
	n, c, h, wd := y.Dims4()
	m := float32(n * h * wd)
	a := conv.Alloc()
	sum := a.Floats(c)
	sumsq := a.Floats(c)
	// Epilogue over the freshly written ofmap tile. In the MKL-DNN
	// implementation this happens before the tile leaves registers; here it
	// is a separate loop over data that is still cache-resident, which keeps
	// the arithmetic identical. On a pool each sample writes a private
	// per-channel partial that is reduced in sample order below — the serial
	// loop adds one per-sample partial per channel in the same order, so the
	// pooled statistics are bit-identical. All scratch comes from the conv's
	// arena on the dispatching goroutine (workers never touch the arena).
	psum := a.Floats(n * c)
	psumsq := a.Floats(n * c)
	conv.Pool().Run(n, func(nLo, nHi int) {
		for in := nLo; in < nHi; in++ {
			for ic := 0; ic < c; ic++ {
				base := (in*c + ic) * h * wd
				row := y.Data[base : base+h*wd]
				// 4-wide unroll: s and sq each stay a single accumulator
				// chain adding elements in ascending order, so the sums are
				// bit-identical to the rolled loop; the unroll only breaks
				// the loop-carried add/mul dependency interleaving.
				var s, sq float32
				i := 0
				for ; i+4 <= len(row); i += 4 {
					v0, v1, v2, v3 := row[i], row[i+1], row[i+2], row[i+3]
					s += v0
					s += v1
					s += v2
					s += v3
					sq += v0 * v0
					sq += v1 * v1
					sq += v2 * v2
					sq += v3 * v3
				}
				for ; i < len(row); i++ {
					v := row[i]
					s += v
					sq += v * v
				}
				psum[in*c+ic] = s
				psumsq[in*c+ic] = sq
			}
		}
	})
	// det-reduce: per-sample Σx/Σx² partials combined in sample order — the
	// serial epilogue's association, so the fused stats are bit-identical.
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			sum[ic] += psum[in*c+ic]
			sumsq[ic] += psumsq[in*c+ic]
		}
	}
	mean := a.Get(c)
	variance := a.Get(c)
	for ic := 0; ic < c; ic++ {
		mu := sum[ic] / m
		mean.Data[ic] = mu
		v := sumsq[ic]/m - mu*mu
		if v < 0 {
			v = 0
		}
		variance.Data[ic] = v
	}
	a.PutFloats(psumsq)
	a.PutFloats(psum)
	a.PutFloats(sumsq)
	a.PutFloats(sum)
	return y, &layers.BNStats{Mean: mean, Var: variance, M: n * h * wd}, nil
}

// ReLUConvForward computes y = conv(ReLU(x), w) without materializing the
// rectified tensor: the clipping happens as the convolution loads each input
// element (the paper's RCF). Returns only y; the backward pass recovers the
// ReLU mask from the saved pre-activation x.
func ReLUConvForward(conv layers.Conv2D, x, w *tensor.Tensor) (*tensor.Tensor, error) {
	if err := convCheck(conv, x, w); err != nil {
		return nil, err
	}
	y := conv.Alloc().Get(conv.OutShape(x.Shape())...)
	n, cin, h, wd := x.Dims4()
	_, cout, oh, ow := y.Dims4()
	geom := conv.SampleGeom(h, wd)
	inLen, outLen := cin*h*wd, cout*oh*ow
	xd, wdat, yd := x.Data, w.Data, y.Data
	// Sample split on the conv's pool: per-sample outputs are disjoint, so
	// pooled execution is bit-identical to serial. The per-sample body is the
	// blocked RCF kernel (inline ReLU on each ifmap read).
	conv.Pool().Run(n, func(nLo, nHi int) {
		for in := nLo; in < nHi; in++ {
			geom.ForwardSampleReLU(xd[in*inLen:(in+1)*inLen], wdat, yd[in*outLen:(in+1)*outLen])
		}
	})
	return y, nil
}

// convGroups mirrors Conv2D's zero-value-means-dense convention.
func convGroups(c layers.Conv2D) int {
	if c.Groups <= 1 {
		return 1
	}
	return c.Groups
}

// FusedBNReLUConvForward computes y = conv(ReLU(BN(x)), w) for the
// restructured graph. It performs exactly two feature-map-sized sweeps:
// read x / write x̂ (the surviving O2' of Figure 5a), with the convolution
// consuming the normalized, rectified values from an on-chip-sized
// per-sample tile — the full-batch rectified tensor never exists. Each
// element is normalized exactly once as it enters the tile, matching how the
// MKL-DNN fused kernel normalizes per register block, so the arithmetic is
// identical to the baseline composition. Returns y and x̂.
func FusedBNReLUConvForward(conv layers.Conv2D, bn layers.BatchNorm, x *tensor.Tensor,
	stats *layers.BNStats, gamma, beta, w *tensor.Tensor) (y, xhat *tensor.Tensor, err error) {
	if x.Rank() != 4 || x.Dim(1) != bn.Channels {
		return nil, nil, fmt.Errorf("kernels: bn input %v, want rank 4 with %d channels", x.Shape(), bn.Channels)
	}
	if err := convCheck(conv, x, w); err != nil {
		return nil, nil, err
	}
	n, c, h, wd := x.Dims4()
	a := conv.Alloc()
	inv := bn.InvStdScratch(stats)
	xhat = a.Get(x.Shape()...)
	y = a.Get(conv.OutShape(x.Shape())...)
	_, cout, oh, ow := y.Dims4()

	// Samples split on the conv's pool; each chunk owns a private per-sample
	// tile of rectified normalized activations (1/N of a batch tensor, the
	// cache-resident working set), and all writes (x̂, y) are per-sample
	// disjoint — pooled execution is bit-identical to serial. The tiles live
	// in one dispatcher-allocated slab indexed by chunk, so workers never
	// touch the arena and the scratch recycles across steps.
	tileLen := c * h * wd
	slab := a.Floats(conv.Pool().NumChunks(n) * tileLen)
	// The serial path runs the chunk body as a plain method call on a
	// stack spec — no closure, no heap traffic on the one-worker steady
	// state. The pooled path builds its own spec so only that copy escapes
	// into the dispatched closure.
	if conv.Pool().Serial() {
		sp := fusedFwdSpec{
			xd: x.Data, xh: xhat.Data, yd: y.Data, wdat: w.Data,
			mean: stats.Mean.Data, inv: inv, g: gamma.Data, b: beta.Data, slab: slab,
			c: c, h: h, wd: wd, cout: cout, outLen: cout * oh * ow,
			tileLen: tileLen, geom: conv.SampleGeom(h, wd),
		}
		sp.run(0, 0, n)
	} else {
		sp := fusedFwdSpec{
			xd: x.Data, xh: xhat.Data, yd: y.Data, wdat: w.Data,
			mean: stats.Mean.Data, inv: inv, g: gamma.Data, b: beta.Data, slab: slab,
			c: c, h: h, wd: wd, cout: cout, outLen: cout * oh * ow,
			tileLen: tileLen, geom: conv.SampleGeom(h, wd),
		}
		conv.Pool().RunChunked(n, func(chunk, nLo, nHi int) {
			sp.run(chunk, nLo, nHi)
		})
	}
	a.PutFloats(slab)
	bn.Alloc().PutFloats(inv)
	return y, xhat, nil
}

// fusedFwdSpec carries FusedBNReLUConvForward's loop state into its chunk
// body, so the serial path can invoke it without allocating a closure.
type fusedFwdSpec struct {
	xd, xh, yd, wdat      []float32
	mean, inv, g, b, slab []float32
	c, h, wd, cout        int
	outLen, tileLen       int
	geom                  layers.ConvGeom
}

// run is the per-chunk body: normalize+rectify one sample into the chunk's
// private tile, then convolve the sample from the tile with the blocked
// sample kernel (same tap order as the reference loop, so the conv half is
// bit-identical to the layer's own forward over the tile).
//
// hot-path: the fused sub-BN2'-ReLU-CONV2 sweep; the tile is carved from the
// dispatcher's slab, so the body allocates nothing.
func (sp *fusedFwdSpec) run(chunk, nLo, nHi int) {
	c, h, wd := sp.c, sp.h, sp.wd
	tile := sp.slab[chunk*sp.tileLen : (chunk+1)*sp.tileLen]
	for in := nLo; in < nHi; in++ {
		// One pass: read x, write x̂ (O2'), fill the tile with ReLU(γx̂+β).
		for ic := 0; ic < c; ic++ {
			base := (in*c + ic) * h * wd
			mu, is, gc, bc := sp.mean[ic], sp.inv[ic], sp.g[ic], sp.b[ic]
			src := sp.xd[base : base+h*wd]
			dst := sp.xh[base : base+h*wd]
			trow := tile[ic*h*wd : (ic+1)*h*wd]
			for i, xv := range src {
				xh := (xv - mu) * is
				dst[i] = xh
				if z := gc*xh + bc; z > 0 {
					trow[i] = z
				} else {
					trow[i] = 0
				}
			}
		}
		// Convolve this sample from the tile.
		sp.geom.ForwardSample(tile, sp.wdat, sp.yd[in*sp.outLen:(in+1)*sp.outLen], nil)
	}
}

func convCheck(conv layers.Conv2D, x, w *tensor.Tensor) error {
	if x.Rank() != 4 {
		return fmt.Errorf("kernels: conv input must be rank 4, got %v", x.Shape())
	}
	if x.Dim(1) != conv.InChannels {
		return fmt.Errorf("kernels: conv input has %d channels, want %d", x.Dim(1), conv.InChannels)
	}
	if !w.Shape().Equal(conv.WeightShape()) {
		return fmt.Errorf("kernels: conv weight %v, want %v", w.Shape(), conv.WeightShape())
	}
	return nil
}
