package kernels

import (
	"fmt"

	"bnff/internal/layers"
	"bnff/internal/tensor"
)

// FusedConvBackwardReLUBNReduce is the backward half of the
// (sub-BN2)-ReLU-CONV2 fusion. Given the upstream gradient dy of CONV2 and
// the saved normalized map x̂ (O2'), it:
//
//  1. regenerates CONV2's saved ifmap z = ReLU(γ·x̂+β) from x̂ on the fly —
//     the rectified activations were never stored;
//  2. runs CONV2's backward, producing dz and dW2;
//  3. applies the ReLU mask inline to turn dz into BN's upstream gradient dv;
//  4. accumulates dγ = Σ dv·x̂ and dβ = Σ dv (sub-BN2') in the same sweep
//     that writes dv.
//
// Returned dv feeds FusedBNInputConvBackward on the other side of the BN.
func FusedConvBackwardReLUBNReduce(conv layers.Conv2D, bn layers.BatchNorm,
	dy, xhat, gamma, beta, w *tensor.Tensor) (dv, dw, dgamma, dbeta *tensor.Tensor, err error) {
	if xhat.Rank() != 4 || xhat.Dim(1) != bn.Channels {
		return nil, nil, nil, nil, fmt.Errorf("kernels: xhat %v, want rank 4 with %d channels", xhat.Shape(), bn.Channels)
	}
	if err := convCheck(conv, xhat, w); err != nil {
		return nil, nil, nil, nil, err
	}
	if !dy.Shape().Equal(conv.OutShape(xhat.Shape())) {
		return nil, nil, nil, nil, fmt.Errorf("kernels: dy %v, want %v", dy.Shape(), conv.OutShape(xhat.Shape()))
	}
	n, c, h, wd := xhat.Dims4()
	a := conv.Alloc()

	// Regenerate z from x̂ (register-resident tile in the real kernel; a
	// scratch buffer here — the arithmetic matches the stored-z baseline
	// bit for bit because it is the same expression). Only positive values
	// are written; the zeroed remainder comes from the arena's zero-on-reuse
	// guarantee (or a fresh heap buffer when no arena is set).
	z := a.Get(xhat.Shape()...)
	conv.Pool().Run(n, func(nLo, nHi int) {
		for in := nLo; in < nHi; in++ {
			for ic := 0; ic < c; ic++ {
				base := (in*c + ic) * h * wd
				g, b := gamma.Data[ic], beta.Data[ic]
				src := xhat.Data[base : base+h*wd]
				dst := z.Data[base : base+h*wd]
				for i, xv := range src {
					if v := g*xv + b; v > 0 {
						dst[i] = v
					}
				}
			}
		}
	})

	// dz accumulates (+=) inside BackwardInto, so it needs the zeroed buffer
	// the arena guarantees; dW escapes into the caller's gradient map and
	// stays a plain allocation.
	dz := a.Get(xhat.Shape()...)
	dw = tensor.New(w.Shape()...)
	if err := conv.BackwardInto(dy, z, w, dz, dw); err != nil {
		a.Put(z)
		a.Put(dz)
		return nil, nil, nil, nil, err
	}

	// Fused epilogue: ReLU mask + dγ/dβ reductions in the dv-writing sweep.
	dv = dz // reuse the buffer: dv is dz masked in place (arena-owned; the executor returns it)
	dgamma = tensor.New(c)
	dbeta = tensor.New(c)
	dg := make([]float64, c)
	db := make([]float64, c)
	// Per-sample dγ/dβ partials reduced in sample order after the pooled
	// sweep — the serial loop adds one per-sample partial per channel in the
	// same order, so the reductions are bit-identical (dv writes are
	// per-sample disjoint).
	psg := make([]float64, n*c)
	psb := make([]float64, n*c)
	conv.Pool().Run(n, func(nLo, nHi int) {
		for in := nLo; in < nHi; in++ {
			for ic := 0; ic < c; ic++ {
				base := (in*c + ic) * h * wd
				zrow := z.Data[base : base+h*wd]
				dvrow := dv.Data[base : base+h*wd]
				xrow := xhat.Data[base : base+h*wd]
				var sg, sb float64
				for i, zv := range zrow {
					if zv <= 0 {
						dvrow[i] = 0
						continue
					}
					g := float64(dvrow[i])
					sg += g * float64(xrow[i])
					sb += g
				}
				psg[in*c+ic] = sg
				psb[in*c+ic] = sb
			}
		}
	})
	// det-reduce: per-sample dγ/dβ partials combined in sample order — the
	// serial loop adds one per-sample partial per channel in the same order.
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			dg[ic] += psg[in*c+ic]
			db[ic] += psb[in*c+ic]
		}
	}
	for ic := 0; ic < c; ic++ {
		dgamma.Data[ic] = float32(dg[ic])
		dbeta.Data[ic] = float32(db[ic])
	}
	a.Put(z)
	return dv, dw, dgamma, dbeta, nil
}

// FusedBNInputConvBackward is the backward half of the CONV1-(sub-BN1)
// fusion. BN's element-wise input gradient
//
//	du = γ·invstd/M · (M·dv − dβ − x̂·dγ)
//
// is produced in the same pass that CONV1's backward consumes as its
// upstream gradient, so du never makes a standalone DRAM round trip.
// x and w are CONV1's saved input and weights; returns dx (gradient into
// whatever precedes CONV1), dW1, and du for callers that need the BN input
// gradient itself (e.g. the ICF path across a Concat).
func FusedBNInputConvBackward(conv layers.Conv2D, bn layers.BatchNorm,
	dv, xhat, gamma *tensor.Tensor, stats *layers.BNStats, dgamma, dbeta *tensor.Tensor,
	x, w *tensor.Tensor) (dx, dw, du *tensor.Tensor, err error) {
	if err := convCheck(conv, x, w); err != nil {
		return nil, nil, nil, err
	}
	if !dv.Shape().Equal(xhat.Shape()) {
		return nil, nil, nil, fmt.Errorf("kernels: dv %v vs xhat %v", dv.Shape(), xhat.Shape())
	}
	if !dv.Shape().Equal(conv.OutShape(x.Shape())) {
		return nil, nil, nil, fmt.Errorf("kernels: dv %v, want conv out %v", dv.Shape(), conv.OutShape(x.Shape()))
	}
	n, c, h, wd := dv.Dims4()
	m := float32(n * h * wd)
	a := conv.Alloc()
	inv := bn.InvStdScratch(stats)
	du = a.Get(dv.Shape()...)
	conv.Pool().Run(n, func(nLo, nHi int) {
		for in := nLo; in < nHi; in++ {
			for ic := 0; ic < c; ic++ {
				base := (in*c + ic) * h * wd
				coef := gamma.Data[ic] * inv[ic] / m
				dg, db := dgamma.Data[ic], dbeta.Data[ic]
				dvrow := dv.Data[base : base+h*wd]
				xrow := xhat.Data[base : base+h*wd]
				durow := du.Data[base : base+h*wd]
				for i, dvv := range dvrow {
					durow[i] = coef * (m*dvv - db - xrow[i]*dg)
				}
			}
		}
	})
	bn.Alloc().PutFloats(inv)
	// dx accumulates (+=) inside BackwardInto and needs the zeroed buffer
	// the arena guarantees; dW escapes and stays a plain allocation.
	dx = a.Get(x.Shape()...)
	dw = tensor.New(w.Shape()...)
	if err := conv.BackwardInto(du, x, w, dx, dw); err != nil {
		a.Put(dx)
		a.Put(du)
		return nil, nil, nil, err
	}
	return dx, dw, du, nil
}

// ReLUConvBackward is RCF's backward: CONV's backward with the ReLU mask
// (recovered from the saved pre-activation x) applied inline to the input
// gradient, so the rectified tensor is never materialized in either pass.
// Returns the gradient w.r.t. the pre-activation x and dW.
func ReLUConvBackward(conv layers.Conv2D, dy, x, w *tensor.Tensor) (dx, dw *tensor.Tensor, err error) {
	if err := convCheck(conv, x, w); err != nil {
		return nil, nil, err
	}
	if !dy.Shape().Equal(conv.OutShape(x.Shape())) {
		return nil, nil, fmt.Errorf("kernels: dy %v, want %v", dy.Shape(), conv.OutShape(x.Shape()))
	}
	// Regenerate z = ReLU(x) for the weight gradient, as the forward never
	// stored it. Flat element-range splits with disjoint writes: bit-identical.
	// z writes only positives and dz accumulates, so both rely on the zeroed
	// buffers the arena guarantees.
	a := conv.Alloc()
	z := a.Get(x.Shape()...)
	conv.Pool().Run(len(x.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v := x.Data[i]; v > 0 {
				z.Data[i] = v
			}
		}
	})
	dz := a.Get(x.Shape()...)
	dw = tensor.New(w.Shape()...)
	if err := conv.BackwardInto(dy, z, w, dz, dw); err != nil {
		a.Put(z)
		a.Put(dz)
		return nil, nil, err
	}
	a.Put(z)
	dx = dz // mask in place
	conv.Pool().Run(len(dx.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if x.Data[i] <= 0 {
				dx.Data[i] = 0
			}
		}
	})
	return dx, dw, nil
}
