package kernels

import (
	"testing"

	"bnff/internal/layers"
	"bnff/internal/parallel"
	"bnff/internal/tensor"
)

// Edge-geometry coverage for the blocked fused kernels: output widths that
// are not multiples of the 4-wide register tile, strides > 1, and grouped
// consumers. The conv half of the fused forward must match the layer's own
// blocked forward bit for bit when fed the same rectified tile.
func TestFusedForwardEdgeGeometries(t *testing.T) {
	cases := []struct {
		name  string
		conv2 layers.Conv2D
		hw    int
	}{
		{"stride2 pad1 ow5", layers.NewConv2D(4, 6, 3, 2, 1), 9},
		{"stride2 pad0 ow4", layers.NewConv2D(4, 6, 3, 2, 0), 10},
		{"ow7 edge tile", layers.NewConv2D(4, 5, 3, 1, 1), 7},
		{"grouped consumer", func() layers.Conv2D {
			c := layers.NewConv2D(4, 6, 3, 1, 1)
			c.Groups = 2
			return c
		}(), 6},
		{"wide pad borders", layers.NewConv2D(4, 3, 3, 1, 2), 5},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			pool := parallel.New(workers)
			conv1 := layers.NewConv2D(3, 4, 3, 1, 1).WithPool(pool)
			conv2 := tc.conv2.WithPool(pool)
			bn := layers.NewBatchNorm(4)
			rng := tensor.NewRNG(uint64(tc.hw))
			x := tensor.New(3, 3, tc.hw, tc.hw)
			w1 := tensor.New(conv1.WeightShape()...)
			w2 := tensor.New(conv2.WeightShape()...)
			gamma := tensor.New(4)
			beta := tensor.New(4)
			rng.FillNormal(x, 0, 1)
			rng.FillHe(w1, 27)
			rng.FillHe(w2, 36)
			rng.FillUniform(gamma, 0.5, 1.5)
			rng.FillUniform(beta, -0.3, 0.3)

			u, stats, err := ConvForwardStats(conv1, x, w1)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			y, xhat, err := FusedBNReLUConvForward(conv2, bn, u, stats, gamma, beta, w2)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			// Rebuild the rectified tile from the returned x̂ with the same
			// expression the fused sweep uses; the conv half must then equal
			// the layer's own blocked forward over it bit for bit.
			z := tensor.New(xhat.Shape()...)
			n, c, h, wd := xhat.Dims4()
			for in := 0; in < n; in++ {
				for ic := 0; ic < c; ic++ {
					base := (in*c + ic) * h * wd
					for i := 0; i < h*wd; i++ {
						if v := gamma.Data[ic]*xhat.Data[base+i] + beta.Data[ic]; v > 0 {
							z.Data[base+i] = v
						}
					}
				}
			}
			want, err := conv2.Forward(z, w2)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if d, _ := tensor.MaxAbsDiff(want, y); d != 0 {
				t.Errorf("%s workers=%d: fused conv half differs from layer forward by %v", tc.name, workers, d)
			}
		}
	}
}

// RCF through the blocked sample kernel must still equal ReLU∘conv exactly
// on edge geometries (strides, groups, tile remainders).
func TestReLUConvForwardEdgeGeometries(t *testing.T) {
	cases := []struct {
		name string
		conv layers.Conv2D
		hw   int
	}{
		{"stride2 ow5", layers.NewConv2D(4, 6, 3, 2, 1), 9},
		{"ow6 remainder", layers.NewConv2D(3, 5, 3, 1, 1), 6},
		{"depthwise", layers.NewDepthwiseConv2D(4, 3, 1, 1), 7},
		{"stride2 pad0", layers.NewConv2D(2, 4, 3, 2, 0), 11},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			conv := tc.conv.WithPool(parallel.New(workers))
			rng := tensor.NewRNG(uint64(tc.hw + workers))
			x := tensor.New(2, conv.InChannels, tc.hw, tc.hw)
			w := tensor.New(conv.WeightShape()...)
			rng.FillNormal(x, 0, 1)
			rng.FillHe(w, conv.InChannels*9)
			want, err := conv.Forward(layers.ReLUForward(x), w)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got, err := ReLUConvForward(conv, x, w)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
				t.Errorf("%s workers=%d: RCF differs from ReLU∘conv by %v", tc.name, workers, d)
			}
		}
	}
}

// The unrolled Σx/Σx² epilogue must be bit-identical to the rolled
// single-chain reference, including tails where H·W % 4 != 0.
func TestConvForwardStatsUnrolledBitIdentical(t *testing.T) {
	conv := layers.NewConv2D(3, 4, 3, 1, 1)
	rng := tensor.NewRNG(21)
	x := tensor.New(3, 3, 7, 7) // 49 elements per map: 4-wide unroll + tail of 1
	w := tensor.New(conv.WeightShape()...)
	rng.FillNormal(x, 0, 1)
	rng.FillHe(w, 27)
	y, stats, err := ConvForwardStats(conv, x, w)
	if err != nil {
		t.Fatal(err)
	}
	n, c, h, wd := y.Dims4()
	m := float32(n * h * wd)
	for ic := 0; ic < c; ic++ {
		var sum, sumsq float32
		for in := 0; in < n; in++ {
			base := (in*c + ic) * h * wd
			var s, sq float32
			for i := 0; i < h*wd; i++ {
				v := y.Data[base+i]
				s += v
				sq += v * v
			}
			sum += s
			sumsq += sq
		}
		mu := sum / m
		v := sumsq/m - mu*mu
		if v < 0 {
			v = 0
		}
		if stats.Mean.Data[ic] != mu || stats.Var.Data[ic] != v {
			t.Errorf("channel %d: stats (%v, %v), rolled reference (%v, %v)",
				ic, stats.Mean.Data[ic], stats.Var.Data[ic], mu, v)
		}
	}
}
