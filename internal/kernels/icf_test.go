package kernels

import (
	"testing"

	"bnff/internal/layers"
	"bnff/internal/tensor"
)

func TestConcatForwardStatsMatchesComposition(t *testing.T) {
	rng := tensor.NewRNG(41)
	a := tensor.New(4, 3, 6, 6)
	b := tensor.New(4, 5, 6, 6)
	c := tensor.New(4, 2, 6, 6)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 1, 2)
	rng.FillNormal(c, -1, 0.5)

	bn := layers.NewBatchNorm(10)
	yBase, err := layers.ConcatForward(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	statsBase, err := bn.ComputeStatsMVF(yBase)
	if err != nil {
		t.Fatal(err)
	}

	y, stats, err := ConcatForwardStats(bn, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(yBase, y); d != 0 {
		t.Errorf("ICF concat output differs by %v", d)
	}
	if !tensor.AllClose(statsBase.Mean, stats.Mean, 1e-5, 1e-6) {
		t.Error("ICF concat mean diverges")
	}
	if !tensor.AllClose(statsBase.Var, stats.Var, 1e-4, 1e-5) {
		t.Error("ICF concat variance diverges")
	}
}

func TestConcatForwardStatsErrors(t *testing.T) {
	bn := layers.NewBatchNorm(5)
	if _, _, err := ConcatForwardStats(bn); err == nil {
		t.Error("accepted empty input list")
	}
	a := tensor.New(2, 3, 4, 4)
	if _, _, err := ConcatForwardStats(bn, a, tensor.New(2, 2, 5, 4)); err == nil {
		t.Error("accepted mismatched spatial dims")
	}
	if _, _, err := ConcatForwardStats(bn, a, tensor.New(2, 3, 4, 4)); err == nil {
		t.Error("accepted channel-count mismatch with BN")
	}
}

func TestFusedSplitBNInputBackwardMatchesComposition(t *testing.T) {
	rng := tensor.NewRNG(43)
	const n, c, hw = 4, 6, 5
	bn := layers.NewBatchNorm(c)
	x := tensor.New(n, c, hw, hw)
	rng.FillNormal(x, 0, 1)
	gamma := tensor.New(c)
	beta := tensor.New(c)
	rng.FillUniform(gamma, 0.5, 1.5)
	_, ctx, err := bn.Forward(x, gamma, beta)
	if err != nil {
		t.Fatal(err)
	}
	dv := tensor.New(n, c, hw, hw)
	rng.FillUniform(dv, -1, 1)
	dgamma, dbeta, err := bn.BackwardReduce(dv, ctx.XHat)
	if err != nil {
		t.Fatal(err)
	}
	other1 := tensor.New(n, c, hw, hw)
	other2 := tensor.New(n, c, hw, hw)
	rng.FillUniform(other1, -1, 1)
	rng.FillUniform(other2, -1, 1)

	// Composition: du then explicit sum.
	du, err := bn.BackwardInput(dv, ctx.XHat, gamma, ctx.Stats, dgamma, dbeta)
	if err != nil {
		t.Fatal(err)
	}
	want := du.Clone()
	if err := want.AddInPlace(other1); err != nil {
		t.Fatal(err)
	}
	if err := want.AddInPlace(other2); err != nil {
		t.Fatal(err)
	}

	got, err := FusedSplitBNInputBackward(bn, dv, ctx.XHat, gamma, ctx.Stats, dgamma, dbeta,
		[]*tensor.Tensor{other1, other2})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, got, 1e-6, 1e-6) {
		d, _ := tensor.MaxAbsDiff(want, got)
		t.Errorf("ICF split backward differs by %v", d)
	}

	// Fan-out of one: no extra contributions.
	solo, err := FusedSplitBNInputBackward(bn, dv, ctx.XHat, gamma, ctx.Stats, dgamma, dbeta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(du, solo); d != 0 {
		t.Errorf("solo ICF split backward differs from BackwardInput by %v", d)
	}
}

func TestFusedSplitBNInputBackwardErrors(t *testing.T) {
	bn := layers.NewBatchNorm(3)
	dv := tensor.New(2, 3, 4, 4)
	xhat := tensor.New(2, 3, 4, 4)
	g := tensor.New(3)
	st := &layers.BNStats{Mean: tensor.New(3), Var: tensor.New(3)}
	dg, db := tensor.New(3), tensor.New(3)
	if _, err := FusedSplitBNInputBackward(bn, tensor.New(2, 4, 4, 4), xhat, g, st, dg, db, nil); err == nil {
		t.Error("accepted wrong dv channels")
	}
	if _, err := FusedSplitBNInputBackward(bn, dv, tensor.New(2, 3, 5, 4), g, st, dg, db, nil); err == nil {
		t.Error("accepted mismatched xhat")
	}
	if _, err := FusedSplitBNInputBackward(bn, dv, xhat, g, st, dg, db,
		[]*tensor.Tensor{tensor.New(1, 3, 4, 4)}); err == nil {
		t.Error("accepted mismatched split contribution")
	}
}
