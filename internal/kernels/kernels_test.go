package kernels

import (
	"testing"
	"testing/quick"

	"bnff/internal/layers"
	"bnff/internal/tensor"
)

// chain holds one CONV1 → BN → ReLU → CONV2 window with random parameters —
// the unit BNFF restructures.
type chain struct {
	conv1, conv2 layers.Conv2D
	bn           layers.BatchNorm
	x, w1, w2    *tensor.Tensor
	gamma, beta  *tensor.Tensor
}

func newChain(seed uint64, n, cin, cmid, cout, hw int) *chain {
	rng := tensor.NewRNG(seed)
	c := &chain{
		conv1: layers.NewConv2D(cin, cmid, 3, 1, 1),
		conv2: layers.NewConv2D(cmid, cout, 3, 1, 1),
		bn:    layers.NewBatchNorm(cmid),
	}
	c.x = tensor.New(n, cin, hw, hw)
	c.w1 = tensor.New(c.conv1.WeightShape()...)
	c.w2 = tensor.New(c.conv2.WeightShape()...)
	c.gamma = tensor.New(cmid)
	c.beta = tensor.New(cmid)
	rng.FillNormal(c.x, 0, 1)
	rng.FillHe(c.w1, cin*9)
	rng.FillHe(c.w2, cmid*9)
	rng.FillUniform(c.gamma, 0.5, 1.5)
	rng.FillUniform(c.beta, -0.3, 0.3)
	return c
}

// baselineForward runs the unfused layer sequence, returning every
// intermediate the baseline graph would store.
func (c *chain) baselineForward(t *testing.T) (u, v, xhat, z, y *tensor.Tensor, stats *layers.BNStats) {
	t.Helper()
	u, err := c.conv1.Forward(c.x, c.w1)
	if err != nil {
		t.Fatal(err)
	}
	stats, err = c.bn.ComputeStats(u)
	if err != nil {
		t.Fatal(err)
	}
	v, xhat, err = c.bn.Normalize(u, stats, c.gamma, c.beta)
	if err != nil {
		t.Fatal(err)
	}
	z = layers.ReLUForward(v)
	y, err = c.conv2.Forward(z, c.w2)
	if err != nil {
		t.Fatal(err)
	}
	return u, v, xhat, z, y, stats
}

func TestConvForwardStatsMatchesBaseline(t *testing.T) {
	c := newChain(1, 4, 3, 8, 6, 8)
	u, _, _, _, _, twoPass := c.baselineForward(t)

	uFused, statsFused, err := ConvForwardStats(c.conv1, c.x, c.w1)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(u, uFused); d != 0 {
		t.Errorf("fused conv output differs from baseline by %v", d)
	}
	if !tensor.AllClose(twoPass.Mean, statsFused.Mean, 1e-5, 1e-5) {
		t.Error("fused statistics mean diverges from two-pass")
	}
	if !tensor.AllClose(twoPass.Var, statsFused.Var, 1e-3, 1e-4) {
		t.Error("fused statistics variance diverges from two-pass")
	}
}

func TestConvForwardStatsErrors(t *testing.T) {
	c := newChain(2, 1, 3, 4, 4, 6)
	if _, _, err := ConvForwardStats(c.conv1, tensor.New(1, 5, 6, 6), c.w1); err == nil {
		t.Error("accepted wrong input channels")
	}
}

func TestReLUConvForwardMatchesBaseline(t *testing.T) {
	conv := layers.NewConv2D(4, 6, 3, 1, 1)
	rng := tensor.NewRNG(5)
	x := tensor.New(3, 4, 7, 7)
	w := tensor.New(conv.WeightShape()...)
	rng.FillNormal(x, 0, 1)
	rng.FillHe(w, 36)

	z := layers.ReLUForward(x)
	want, err := conv.Forward(z, w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReLUConvForward(conv, x, w)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Errorf("RCF forward differs from ReLU∘conv by %v", d)
	}
	if _, err := ReLUConvForward(conv, tensor.New(1, 3, 7, 7), w); err == nil {
		t.Error("accepted wrong input channels")
	}
}

func TestFusedBNReLUConvForwardMatchesBaseline(t *testing.T) {
	c := newChain(7, 4, 3, 8, 6, 8)
	u, _, xhatBase, _, yBase, stats := c.baselineForward(t)

	y, xhat, err := FusedBNReLUConvForward(c.conv2, c.bn, u, stats, c.gamma, c.beta, c.w2)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(xhatBase, xhat); d != 0 {
		t.Errorf("fused x̂ differs from baseline by %v", d)
	}
	if !tensor.AllClose(yBase, y, 1e-5, 1e-6) {
		d, _ := tensor.MaxAbsDiff(yBase, y)
		t.Errorf("fused BN-ReLU-conv output differs from baseline by %v", d)
	}
}

func TestFusedBNReLUConvForwardErrors(t *testing.T) {
	c := newChain(9, 2, 3, 4, 4, 6)
	u, _, _, _, _, stats := c.baselineForward(t)
	if _, _, err := FusedBNReLUConvForward(c.conv2, c.bn, tensor.New(2, 9, 6, 6), stats, c.gamma, c.beta, c.w2); err == nil {
		t.Error("accepted wrong channel count")
	}
	if _, _, err := FusedBNReLUConvForward(c.conv2, c.bn, u, stats, c.gamma, c.beta, tensor.New(1, 1, 1, 1)); err == nil {
		t.Error("accepted wrong weight shape")
	}
}

// The full restructured backward must reproduce the baseline backward:
// gradients for x, w1, w2, γ, β all agree to float32 round-off.
func TestFusedBackwardMatchesBaseline(t *testing.T) {
	c := newChain(11, 4, 3, 8, 6, 8)
	_, _, xhat, z, y, stats := c.baselineForward(t)

	dy := tensor.New(y.Shape()...)
	tensor.NewRNG(100).FillUniform(dy, -1, 1)

	// Baseline backward, layer by layer.
	dzBase, dw2Base, err := c.conv2.Backward(dy, z, c.w2)
	if err != nil {
		t.Fatal(err)
	}
	dvBase, err := layers.ReLUBackward(dzBase, z)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &layers.BNContext{XHat: xhat, Stats: stats}
	duBase, dgBase, dbBase, err := c.bn.Backward(dvBase, ctx, c.gamma)
	if err != nil {
		t.Fatal(err)
	}
	dxBase, dw1Base, err := c.conv1.Backward(duBase, c.x, c.w1)
	if err != nil {
		t.Fatal(err)
	}

	// Restructured backward through the fused kernels.
	dv, dw2, dgamma, dbeta, err := FusedConvBackwardReLUBNReduce(c.conv2, c.bn, dy, xhat, c.gamma, c.beta, c.w2)
	if err != nil {
		t.Fatal(err)
	}
	dx, dw1, du, err := FusedBNInputConvBackward(c.conv1, c.bn, dv, xhat, c.gamma, stats, dgamma, dbeta, c.x, c.w1)
	if err != nil {
		t.Fatal(err)
	}

	for name, pair := range map[string][2]*tensor.Tensor{
		"dW2":    {dw2Base, dw2},
		"dv":     {dvBase, dv},
		"dGamma": {dgBase, dgamma},
		"dBeta":  {dbBase, dbeta},
		"du":     {duBase, du},
		"dX":     {dxBase, dx},
		"dW1":    {dw1Base, dw1},
	} {
		if !tensor.AllClose(pair[0], pair[1], 1e-4, 1e-5) {
			d, _ := tensor.MaxAbsDiff(pair[0], pair[1])
			t.Errorf("%s: fused backward differs from baseline by %v", name, d)
		}
	}
}

func TestReLUConvBackwardMatchesBaseline(t *testing.T) {
	conv := layers.NewConv2D(4, 5, 3, 1, 1)
	rng := tensor.NewRNG(13)
	x := tensor.New(2, 4, 6, 6)
	w := tensor.New(conv.WeightShape()...)
	rng.FillNormal(x, 0, 1)
	rng.FillHe(w, 36)
	z := layers.ReLUForward(x)
	dy := tensor.New(conv.OutShape(x.Shape())...)
	rng.FillUniform(dy, -1, 1)

	dzBase, dwBase, err := conv.Backward(dy, z, w)
	if err != nil {
		t.Fatal(err)
	}
	dxBase, err := layers.ReLUBackward(dzBase, x)
	if err != nil {
		t.Fatal(err)
	}
	dx, dw, err := ReLUConvBackward(conv, dy, x, w)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(dxBase, dx); d != 0 {
		t.Errorf("RCF backward dX differs by %v", d)
	}
	if d, _ := tensor.MaxAbsDiff(dwBase, dw); d != 0 {
		t.Errorf("RCF backward dW differs by %v", d)
	}
	if _, _, err := ReLUConvBackward(conv, tensor.New(1, 1, 1, 1), x, w); err == nil {
		t.Error("accepted wrong dy shape")
	}
}

func TestFusedBackwardErrors(t *testing.T) {
	c := newChain(15, 2, 3, 4, 4, 6)
	u, _, xhat, _, y, stats := c.baselineForward(t)
	_ = u
	dy := tensor.New(y.Shape()...)
	if _, _, _, _, err := FusedConvBackwardReLUBNReduce(c.conv2, c.bn, tensor.New(1, 1, 1, 1), xhat, c.gamma, c.beta, c.w2); err == nil {
		t.Error("reduce accepted wrong dy shape")
	}
	if _, _, _, _, err := FusedConvBackwardReLUBNReduce(c.conv2, c.bn, dy, tensor.New(2, 9, 6, 6), c.gamma, c.beta, c.w2); err == nil {
		t.Error("reduce accepted wrong xhat shape")
	}
	dg := tensor.New(c.bn.Channels)
	if _, _, _, err := FusedBNInputConvBackward(c.conv1, c.bn, tensor.New(1, 1, 1, 1), xhat, c.gamma, stats, dg, dg, c.x, c.w1); err == nil {
		t.Error("input-grad kernel accepted mismatched dv")
	}
}

// Property: across random shapes and seeds the fused forward equals the
// baseline forward. This is the paper's "restructuring changes memory
// behaviour, not arithmetic" claim, exercised as a property test.
func TestQuickFusedForwardEquivalence(t *testing.T) {
	f := func(seed uint64, nBits, cBits uint8) bool {
		n := 2 + int(nBits%3)
		cmid := 2 + int(cBits%6)
		c := newChain(seed, n, 3, cmid, 4, 6)
		u, _, _, _, yBase, stats := c.baselineForward(t)
		y, _, err := FusedBNReLUConvForward(c.conv2, c.bn, u, stats, c.gamma, c.beta, c.w2)
		if err != nil {
			return false
		}
		return tensor.AllClose(yBase, y, 1e-4, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: across random windows, the fused backward kernels reproduce the
// baseline backward composition for every gradient.
func TestQuickFusedBackwardEquivalence(t *testing.T) {
	f := func(seed uint64, nBits uint8) bool {
		n := 2 + int(nBits%3)
		c := newChain(seed, n, 3, 4, 3, 5)
		_, _, xhat, z, y, stats := c.baselineForward(t)
		dy := tensor.New(y.Shape()...)
		tensor.NewRNG(seed^0xabc).FillUniform(dy, -1, 1)

		dzB, dw2B, err := c.conv2.Backward(dy, z, c.w2)
		if err != nil {
			return false
		}
		dvB, err := layers.ReLUBackward(dzB, z)
		if err != nil {
			return false
		}
		ctx := &layers.BNContext{XHat: xhat, Stats: stats}
		duB, dgB, dbB, err := c.bn.Backward(dvB, ctx, c.gamma)
		if err != nil {
			return false
		}
		dxB, dw1B, err := c.conv1.Backward(duB, c.x, c.w1)
		if err != nil {
			return false
		}

		dv, dw2, dg, db, err := FusedConvBackwardReLUBNReduce(c.conv2, c.bn, dy, xhat, c.gamma, c.beta, c.w2)
		if err != nil {
			return false
		}
		dx, dw1, _, err := FusedBNInputConvBackward(c.conv1, c.bn, dv, xhat, c.gamma, stats, dg, db, c.x, c.w1)
		if err != nil {
			return false
		}
		pairs := [][2]*tensor.Tensor{{dw2B, dw2}, {dgB, dg}, {dbB, db}, {dxB, dx}, {dw1B, dw1}}
		for _, p := range pairs {
			if !tensor.AllClose(p[0], p[1], 1e-3, 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the MVF statistics computed by the fused CONV epilogue keep BN's
// normalization valid — normalizing with them yields per-channel mean ~0 and
// variance ~1.
func TestQuickFusedStatsNormalize(t *testing.T) {
	f := func(seed uint64) bool {
		c := newChain(seed, 4, 3, 5, 4, 7)
		u, statsFused, err := ConvForwardStats(c.conv1, c.x, c.w1)
		if err != nil {
			return false
		}
		gamma := tensor.New(5)
		gamma.Fill(1)
		beta := tensor.New(5)
		y, _, err := c.bn.Normalize(u, statsFused, gamma, beta)
		if err != nil {
			return false
		}
		check, err := c.bn.ComputeStats(y)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			if m := float64(check.Mean.Data[i]); m > 1e-3 || m < -1e-3 {
				return false
			}
			if v := float64(check.Var.Data[i]); v < 0.9 || v > 1.1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
