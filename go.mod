module bnff

go 1.22
