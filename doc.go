// Package bnff reproduces "Restructuring Batch Normalization to Accelerate
// CNN Training" (Jung et al., SysML/MLSys 2019) as a pure-Go library: the
// BN Fission-n-Fusion graph restructuring (internal/core), the numeric layer
// and fused-kernel substrates it rewrites between (internal/layers,
// internal/kernels), the CNN model zoo the paper evaluates
// (internal/models), the analytical memory/timing machine model standing in
// for the paper's Skylake/KNL/GPU testbed (internal/memsim), and one
// experiment generator per table and figure (internal/experiments).
//
// The root package holds the benchmark harness: one testing.B benchmark per
// paper table/figure plus real-kernel and ablation benchmarks. See README.md
// for the map and EXPERIMENTS.md for paper-vs-measured results.
package bnff
