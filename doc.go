// Package bnff reproduces "Restructuring Batch Normalization to Accelerate
// CNN Training" (Jung et al., SysML/MLSys 2019) as a pure-Go library: the
// BN Fission-n-Fusion graph restructuring (internal/core), the numeric layer
// and fused-kernel substrates it rewrites between (internal/layers,
// internal/kernels), the shared worker-pool runtime that parallelizes both
// (internal/parallel), the CNN model zoo the paper evaluates
// (internal/models), the analytical memory/timing machine model standing in
// for the paper's Skylake/KNL/GPU testbed (internal/memsim), and one
// experiment generator per table and figure (internal/experiments).
//
// # Configuration
//
// Execution is configured with functional options at construction. An
// executor owns its worker pool and statistics/inference modes:
//
//	exec, err := core.NewExecutor(g,
//	        core.WithSeed(42),
//	        core.WithWorkers(runtime.GOMAXPROCS(0)), // parallel layer execution
//	        core.WithPreciseStats(),                 // float64 MVF accumulators
//	)
//
// and a trainer composes on top:
//
//	tr, err := train.NewTrainer(exec, data,
//	        train.WithBatchSize(32),
//	        train.WithOptimizer(train.NewSGD(0.1, 0.9, 1e-4)),
//	        train.WithWorkers(runtime.GOMAXPROCS(0)))
//
// Parallel execution is deterministic: forward passes are bit-identical to
// serial execution and backward passes stay within float32 round-off (see
// internal/parallel for the contract). Configuration is options-only
// (core.With*, train.With*); no hot path reads a global.
//
// # Serving
//
// internal/serve and cmd/bnff-serve deploy a checkpoint behind HTTP with
// dynamic micro-batching: single-image POST /predict requests coalesce into
// mini-batches (when MaxBatch are queued or MaxWait expires) dispatched to a
// pool of replica inference executors, with bounded queueing and explicit
// load shedding (429). Replicas are built core.WithInference and, by
// default, core.WithFoldedBN — an inference-time compile pass that rewrites
// every CONV→BN pair where the BN is the conv's sole consumer into a single
// CONV with per-channel scaled weights and a folded bias, so those BNs cost
// zero feature-map sweeps at serving time; unfoldable BNs (after concat,
// pooling, EWS, or fan-out) keep the element-wise normalize path on running
// statistics. Inference has no cross-sample reductions, so a request's
// logits are bit-identical regardless of the batch it is coalesced into.
// GET /healthz and GET /stats complete the ops surface; latency quantiles
// come from a deterministic power-of-two histogram fed by an injected clock.
//
// internal/fleet and cmd/bnff-proxy scale that to a fleet: a front proxy
// routes POST /predict across N bnff-serve backends under a deterministic
// policy (rendezvous hashing with a mix64 finalizer by default, or
// least-loaded / round-robin — all pure functions of key and membership), a
// control plane registers, probes, drains, ejects, and readmits backends on
// an injected clock, and POST /fleet/reload rolls a new checkpoint through
// the fleet one drained backend at a time via serve's atomic-generation
// Reload, keeping capacity at N-1 throughout. Bit-deterministic inference
// makes zero-downtime testable: during a roll every answer must bit-match
// exactly one checkpoint generation, and afterwards only the new one
// (asserted end to end, over real processes and sockets, by
// scripts/fleet-smoke.sh, and in-process by the serve/fleet/* scenarios).
//
// # Observability
//
// internal/obs instruments real runs the same way internal/memsim predicts
// them: a span tracer (injected monotonic clock, never a library wall-clock
// read) records per-node forward/backward spans, pool dispatch/drain spans,
// and per-step envelopes through core.WithTracer / train.WithTracer; a
// counter/gauge/histogram registry with deterministic text exposition backs
// GET /metrics on bnff-serve; and a report layer aggregates spans into the
// paper's Figure-1-style per-class time breakdown (CONV vs BN vs ReLU vs
// other, forward/backward split). Both tracer and registry are nil-safe and
// allocation-free when disabled, so the instrumented hot paths cost nothing
// unless a tool opts in. cmd/bnff-profile drives a traced training run per
// restructuring scenario and prints measured-vs-modeled breakdowns; the
// Chrome-trace export is schema-compatible with memsim's, so measured and
// modeled traces load side by side in chrome://tracing. Under an injected
// step clock the traces are byte-identical run to run.
//
// # Data-parallel training
//
// internal/ddp scales the mini-batch across N replica executors without
// giving up replayability: each step shards the batch into contiguous
// zero-copy views, runs forward/backward per replica on the parallel pool,
// and averages gradients through a fixed-order binary-tree all-reduce
// (det.TreePlan — combine order is a pure function of replica index, never
// of goroutine scheduling). BN statistics follow one of two strategies
// (train.WithReplicas / train.WithBNStrategy, scenario fields Replicas /
// BNStrategy, flags -replicas / -bn-strategy): local, where each replica
// normalizes over its own shard (ghost-batch BN), and sync, where replicas
// exchange single-sweep (Σx, Σx², count) moments so every shard normalizes
// with whole-batch statistics — exactly one extra all-reduce per BN layer,
// the paper's MVF form paying off a second time. Sync forward statistics are
// bit-identical to a single executor running the undivided batch; a
// one-replica group is byte-identical to the plain trainer.
//
// # Static analysis
//
// The determinism contracts are enforced structurally by an in-tree,
// stdlib-only static-analysis suite (internal/analysis; driver
// cmd/bnff-lint; `make lint`, folded into `make check` and CI). Six
// analyzers cover the regression classes that would invalidate the paper's
// comparisons: poolonly (no goroutines, sync.WaitGroup, or channels outside
// the allowlisted concurrency domains internal/parallel, internal/serve,
// internal/obs, internal/ddp, and internal/fleet — all compute fan-out
// dispatches through the executor's pool),
// maporder (no float accumulation, appends, or work-spawning inside a range
// over a map; iterate det.SortedKeys instead), noglobals (no package-level
// mutable state in the hot-path packages), detreduce (every cross-partition
// float combine after a pool dispatch reduces in partition order under a
// `// det-reduce:` marker), and seededrand (math/rand and time.Now are
// confined to internal/tensor/rand.go, internal/obs/clock.go, and cmd/).
// Deliberate exceptions are suppressed inline with
// `//lint:ignore <analyzer> <reason>`. See the "Static analysis" section
// of README.md.
//
// The root package holds the benchmark harness: one testing.B benchmark per
// paper table/figure plus real-kernel, parallel-speedup, and ablation
// benchmarks. See README.md for the map and EXPERIMENTS.md for
// paper-vs-measured results.
package bnff
