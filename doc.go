// Package bnff reproduces "Restructuring Batch Normalization to Accelerate
// CNN Training" (Jung et al., SysML/MLSys 2019) as a pure-Go library: the
// BN Fission-n-Fusion graph restructuring (internal/core), the numeric layer
// and fused-kernel substrates it rewrites between (internal/layers,
// internal/kernels), the shared worker-pool runtime that parallelizes both
// (internal/parallel), the CNN model zoo the paper evaluates
// (internal/models), the analytical memory/timing machine model standing in
// for the paper's Skylake/KNL/GPU testbed (internal/memsim), and one
// experiment generator per table and figure (internal/experiments).
//
// # Configuration
//
// Execution is configured with functional options at construction. An
// executor owns its worker pool and statistics/inference modes:
//
//	exec, err := core.NewExecutor(g,
//	        core.WithSeed(42),
//	        core.WithWorkers(runtime.GOMAXPROCS(0)), // parallel layer execution
//	        core.WithPreciseStats(),                 // float64 MVF accumulators
//	)
//
// and a trainer composes on top:
//
//	tr, err := train.NewTrainer(exec, data,
//	        train.WithBatchSize(32),
//	        train.WithOptimizer(train.NewSGD(0.1, 0.9, 1e-4)),
//	        train.WithWorkers(runtime.GOMAXPROCS(0)))
//
// Parallel execution is deterministic: forward passes are bit-identical to
// serial execution and backward passes stay within float32 round-off (see
// internal/parallel for the contract). The old package-global
// layers.SetConvWorkers knob survives only as a deprecated shim over the
// construction-time default; no hot path reads a global.
//
// The root package holds the benchmark harness: one testing.B benchmark per
// paper table/figure plus real-kernel, parallel-speedup, and ablation
// benchmarks. See README.md for the map and EXPERIMENTS.md for
// paper-vs-measured results.
package bnff
