// bnff-train trains a scaled-down model numerically with a chosen
// restructuring scenario and, with -compare, runs the baseline side by side
// on identical batches to demonstrate loss parity and per-step wall-clock.
//
// Usage:
//
//	bnff-train -model tiny-densenet -restructure bnff -steps 100
//	bnff-train -model tiny-cnn -restructure bnff -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bnff/internal/core"
	"bnff/internal/graph"
	"bnff/internal/models"
	"bnff/internal/obs"
	"bnff/internal/parallel"
	"bnff/internal/train"
	"bnff/internal/workload"
)

func main() {
	model := flag.String("model", "tiny-densenet", fmt.Sprintf("model: one of %v (tiny-* train quickly)", models.Names()))
	scen := flag.String("restructure", "bnff", "scenario: baseline, rcf, rcf+mvf, bnff, bnff+icf")
	steps := flag.Int("steps", 60, "training steps")
	batch := flag.Int("batch", 16, "mini-batch size")
	lr := flag.Float64("lr", 0.01, "learning rate")
	seed := flag.Uint64("seed", 42, "parameter and data seed")
	compare := flag.Bool("compare", false, "also train the baseline on identical batches and report parity")
	every := flag.Int("log-every", 10, "print metrics every N steps")
	workers := flag.Int("workers", parallel.NumCPU(), "worker goroutines per executor (parallel layer execution)")
	save := flag.String("save", "", "write a checkpoint to this path after training")
	load := flag.String("load", "", "restore a checkpoint from this path before training")
	schedule := flag.String("schedule", "constant", "learning-rate schedule: constant, step, cosine")
	tracePath := flag.String("trace", "", "write a Chrome trace of the restructured run's spans to this path")
	profile := flag.Bool("profile", false, "print the measured per-class layer breakdown after training")
	arena := flag.Bool("arena", true, "serve activations from the liveness-driven arena (bit-identical; off = legacy per-step allocation)")
	flag.Parse()

	if err := run(runConfig{
		model: *model, scen: *scen, steps: *steps, batch: *batch, lr: *lr,
		seed: *seed, compare: *compare, every: *every, workers: *workers,
		save: *save, load: *load, schedule: *schedule,
		trace: *tracePath, profile: *profile, arena: *arena,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bnff-train:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	model, scen          string
	steps, batch, every  int
	workers              int
	lr                   float64
	seed                 uint64
	compare              bool
	save, load, schedule string
	trace                string
	profile              bool
	arena                bool
}

func scheduleOf(name string, base float64, steps int) (train.Schedule, error) {
	switch name {
	case "constant":
		return train.ConstantLR(base), nil
	case "step":
		return train.StepDecay{Base: base, Gamma: 0.1, Every: steps / 3}, nil
	case "cosine":
		return train.CosineDecay{Base: base, Floor: base / 100, Total: steps}, nil
	default:
		return nil, fmt.Errorf("unknown schedule %q", name)
	}
}

func buildGraph(model string, batch int) (*graph.Graph, int, error) {
	g, err := models.Build(model, batch)
	if err != nil {
		return nil, 0, err
	}
	return g, g.Output.OutShape[1], nil
}

func parseScenario(s string) (core.Scenario, error) {
	switch s {
	case "baseline":
		return core.Baseline, nil
	case "rcf":
		return core.RCF, nil
	case "rcf+mvf", "mvf":
		return core.RCFMVF, nil
	case "bnff":
		return core.BNFF, nil
	case "bnff+icf", "icf":
		return core.BNFFICF, nil
	default:
		return 0, fmt.Errorf("unknown scenario %q", s)
	}
}

func newTrainer(model string, scenario core.Scenario, batch, workers int, lr float64, seed uint64,
	sched train.Schedule, arena bool) (*train.Trainer, error) {
	g, classes, err := buildGraph(model, batch)
	if err != nil {
		return nil, err
	}
	if err := core.Restructure(g, scenario.Options()); err != nil {
		return nil, err
	}
	opts := []core.Option{core.WithSeed(seed), core.WithWorkers(workers)}
	if arena {
		opts = append(opts, core.WithArena())
	}
	exec, err := core.NewExecutor(g, opts...)
	if err != nil {
		return nil, err
	}
	size := g.Nodes[0].OutShape[2]
	data, err := workload.New(workload.Config{
		Classes: classes, Channels: 3, Size: size, Noise: 0.3, Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	return train.NewTrainer(exec, data,
		train.WithBatchSize(batch),
		train.WithOptimizer(train.NewSGD(lr, 0.9, 1e-4)),
		train.WithSchedule(sched))
}

func run(cfg runConfig) error {
	scenario, err := parseScenario(cfg.scen)
	if err != nil {
		return err
	}
	sched, err := scheduleOf(cfg.schedule, cfg.lr, cfg.steps)
	if err != nil {
		return err
	}
	tr, err := newTrainer(cfg.model, scenario, cfg.batch, cfg.workers, cfg.lr, cfg.seed, sched, cfg.arena)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if cfg.trace != "" || cfg.profile {
		// Spans are wall-clock here: a cmd may read real time (the library
		// cannot), and a training profile is only meaningful in real time.
		tracer = obs.NewTracer(obs.WallClock())
		tr.Exec.SetTracer(tracer)
	}
	if cfg.load != "" {
		if err := tr.Exec.LoadFile(cfg.load); err != nil {
			return fmt.Errorf("load checkpoint: %w", err)
		}
		fmt.Printf("restored checkpoint %s\n", cfg.load)
	}
	fmt.Printf("model=%s scenario=%v batch=%d steps=%d lr=%g schedule=%s workers=%d\n",
		cfg.model, scenario, cfg.batch, cfg.steps, cfg.lr, cfg.schedule, tr.Exec.Workers())

	var base *train.Trainer
	if cfg.compare && scenario != core.Baseline {
		base, err = newTrainer(cfg.model, core.Baseline, cfg.batch, cfg.workers, cfg.lr, cfg.seed, sched, cfg.arena)
		if err != nil {
			return err
		}
		// Identical starting weights so the trajectories are comparable.
		if err := tr.Exec.CopyParamsFrom(base.Exec); err != nil {
			return err
		}
	}

	data, err := workload.New(workload.Config{
		Classes: classesOf(cfg.model), Channels: 3, Size: tr.Exec.G.Nodes[0].OutShape[2],
		Noise: 0.3, Seed: cfg.seed + 2,
	})
	if err != nil {
		return err
	}

	var tScenario, tBase time.Duration
	for i := 0; i < cfg.steps; i++ {
		x, labels, err := data.Batch(cfg.batch)
		if err != nil {
			return err
		}
		t0 := time.Now()
		res, err := tr.StepOn(x, labels)
		if err != nil {
			return err
		}
		tScenario += time.Since(t0)

		if base != nil {
			t0 = time.Now()
			resB, err := base.StepOn(x, labels)
			if err != nil {
				return err
			}
			tBase += time.Since(t0)
			if (i+1)%cfg.every == 0 {
				fmt.Printf("step %4d  loss %.4f (baseline %.4f, |Δ| %.2g)  acc %.3f\n",
					i+1, res.Loss, resB.Loss, abs(res.Loss-resB.Loss), res.Accuracy)
			}
			continue
		}
		if (i+1)%cfg.every == 0 {
			fmt.Printf("step %4d  loss %.4f  acc %.3f  lr %.4g\n", i+1, res.Loss, res.Accuracy, tr.Opt.LR)
		}
	}
	fmt.Printf("%v wall-clock: %.1f ms/step\n", scenario, float64(tScenario.Milliseconds())/float64(cfg.steps))
	if base != nil {
		fmt.Printf("baseline wall-clock: %.1f ms/step\n", float64(tBase.Milliseconds())/float64(cfg.steps))
		fmt.Printf("final mean loss: %v %.4f vs baseline %.4f\n", scenario, tr.MeanLoss(10), base.MeanLoss(10))
	}
	if cfg.save != "" {
		if err := tr.Exec.SaveFile(cfg.save); err != nil {
			return fmt.Errorf("save checkpoint: %w", err)
		}
		fmt.Printf("saved checkpoint to %s\n", cfg.save)
	}
	if cfg.profile {
		fmt.Printf("\nmeasured layer breakdown (%v, %d steps):\n", scenario, cfg.steps)
		if err := obs.LayerBreakdown(tracer.Spans()).WriteTable(os.Stdout, nil); err != nil {
			return err
		}
	}
	if cfg.trace != "" {
		f, err := os.Create(cfg.trace)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, tracer.Spans(), 1); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", cfg.trace)
	}
	return nil
}

func classesOf(model string) int {
	c, err := models.Classes(model, 1)
	if err != nil {
		return 10
	}
	return c
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
