// bnff-train trains a scaled-down model numerically with a chosen
// restructuring scenario and, with -compare, runs the baseline side by side
// on identical batches to demonstrate loss parity and per-step wall-clock.
//
// The run is declared by a scenario.Spec: either assembled from the flags,
// or — with -scenario — looked up in the builtin registry, with explicitly
// set flags overriding the named spec's fields.
//
// Usage:
//
//	bnff-train -model tiny-densenet -restructure bnff -steps 100
//	bnff-train -scenario train/tiny-densenet/bnff -steps 200
//	bnff-train -model tiny-cnn -restructure bnff -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bnff/internal/models"
	"bnff/internal/obs"
	"bnff/internal/parallel"
	"bnff/internal/scenario"
	"bnff/internal/train"
	"bnff/internal/workload"
)

func main() {
	scenName := flag.String("scenario", "", "start from this builtin scenario; set flags override its fields")
	model := flag.String("model", "tiny-densenet", fmt.Sprintf("model: one of %v (tiny-* train quickly)", models.Names()))
	restructure := flag.String("restructure", "bnff", "scenario: baseline, rcf, rcf+mvf, bnff, bnff+icf")
	steps := flag.Int("steps", 60, "training steps")
	batch := flag.Int("batch", 16, "mini-batch size")
	lr := flag.Float64("lr", 0.01, "learning rate")
	seed := flag.Uint64("seed", 42, "parameter and data seed")
	compare := flag.Bool("compare", false, "also train the baseline on identical batches and report parity")
	every := flag.Int("log-every", 10, "print metrics every N steps")
	workers := flag.Int("workers", parallel.NumCPU(), "worker goroutines per executor (parallel layer execution)")
	save := flag.String("save", "", "write a checkpoint to this path after training")
	load := flag.String("load", "", "restore a checkpoint from this path before training")
	schedule := flag.String("schedule", "constant", "learning-rate schedule: constant, step, cosine")
	tracePath := flag.String("trace", "", "write a Chrome trace of the restructured run's spans to this path")
	profile := flag.Bool("profile", false, "print the measured per-class layer breakdown after training")
	arena := flag.Bool("arena", true, "serve activations from the liveness-driven arena (bit-identical; off = legacy per-step allocation)")
	replicas := flag.Int("replicas", 1, "data-parallel replicas; each step shards the batch and tree-all-reduces gradients")
	bnStrategy := flag.String("bn-strategy", "local", "replica BN statistics: local (per-shard ghost batches) or sync (one extra all-reduce, needs an MVF restructure)")
	flag.Parse()

	sp, err := resolveSpec(*scenName, func(sp *scenario.Spec) {
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "model":
				sp.Model = *model
			case "restructure":
				sp.Restructure = *restructure
			case "steps":
				sp.Steps = *steps
			case "batch":
				sp.Batch = *batch
			case "lr":
				sp.LR = *lr
			case "seed":
				sp.Seed = *seed
			case "workers":
				sp.Workers = *workers
			case "schedule":
				sp.Schedule = *schedule
			case "arena":
				sp.NoArena = !*arena
			case "replicas":
				sp.Replicas = *replicas
			case "bn-strategy":
				sp.BNStrategy = *bnStrategy
			}
		})
	}, scenario.Spec{
		Name:        "cli/train",
		Kind:        scenario.KindTrain,
		Model:       *model,
		Restructure: *restructure,
		Steps:       *steps,
		Batch:       *batch,
		LR:          *lr,
		Seed:        *seed,
		Workers:     *workers,
		Schedule:    *schedule,
		NoArena:     !*arena,
		Replicas:    *replicas,
		BNStrategy:  *bnStrategy,
	})
	if err == nil {
		err = run(sp, *compare, *every, *save, *load, *tracePath, *profile)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bnff-train:", err)
		os.Exit(1)
	}
}

// resolveSpec produces the normalized spec a command runs: the named builtin
// scenario with explicitly set flags layered on top, or — without -scenario —
// the spec assembled from every flag value.
func resolveSpec(name string, override func(*scenario.Spec), fromFlags scenario.Spec) (scenario.Spec, error) {
	sp := fromFlags
	if name != "" {
		reg := scenario.Builtin()
		got, ok := reg.Get(name)
		if !ok {
			return scenario.Spec{}, fmt.Errorf("unknown scenario %q (builtin: %v)", name, reg.Names())
		}
		if got.Kind != scenario.KindTrain {
			return scenario.Spec{}, fmt.Errorf("scenario %q is a %s scenario; this command trains", name, got.Kind)
		}
		sp = got
		override(&sp)
	}
	if err := sp.Normalize(); err != nil {
		return scenario.Spec{}, err
	}
	return sp, nil
}

func run(sp scenario.Spec, compare bool, every int, save, load, tracePath string, profile bool) error {
	tr, err := sp.NewTrainer()
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if tracePath != "" || profile {
		// Spans are wall-clock here: a cmd may read real time (the library
		// cannot), and a training profile is only meaningful in real time.
		tracer = obs.NewTracer(obs.WallClock())
		tr.Exec.SetTracer(tracer)
	}
	if load != "" {
		if err := tr.Exec.LoadFile(load); err != nil {
			return fmt.Errorf("load checkpoint: %w", err)
		}
		fmt.Printf("restored checkpoint %s\n", load)
	}
	fmt.Printf("model=%s scenario=%s batch=%d steps=%d lr=%g schedule=%s workers=%d\n",
		sp.Model, sp.Restructure, sp.Batch, sp.Steps, sp.LR, sp.Schedule, tr.Exec.Workers())
	if sp.Replicas > 1 {
		fmt.Printf("data-parallel: replicas=%d bn-strategy=%s (shard batch %d)\n",
			sp.Replicas, sp.BNStrategy, sp.Batch/sp.Replicas)
	}

	var base *train.Trainer
	if compare && sp.Restructure != "baseline" {
		spBase := sp
		spBase.Name = sp.Name + "/baseline-compare"
		spBase.Restructure = "baseline"
		base, err = spBase.NewTrainer()
		if err != nil {
			return err
		}
		// Identical starting weights so the trajectories are comparable.
		if err := tr.Exec.CopyParamsFrom(base.Exec); err != nil {
			return err
		}
	}

	// The comparison batches come from their own stream (seed+2), distinct
	// from both the parameter seed and the trainers' internal datasets.
	in := tr.Exec.G.Nodes[0].OutShape
	data, err := workload.New(workload.Config{
		Classes: tr.Exec.G.Output.OutShape[1], Channels: in[1], Size: in[2],
		Noise: 0.3, Seed: sp.Seed + 2,
	})
	if err != nil {
		return err
	}

	var tScenario, tBase time.Duration
	for i := 0; i < sp.Steps; i++ {
		x, labels, err := data.Batch(sp.Batch)
		if err != nil {
			return err
		}
		t0 := time.Now()
		res, err := tr.StepOn(x, labels)
		if err != nil {
			return err
		}
		tScenario += time.Since(t0)

		if base != nil {
			t0 = time.Now()
			resB, err := base.StepOn(x, labels)
			if err != nil {
				return err
			}
			tBase += time.Since(t0)
			if (i+1)%every == 0 {
				fmt.Printf("step %4d  loss %.4f (baseline %.4f, |Δ| %.2g)  acc %.3f\n",
					i+1, res.Loss, resB.Loss, abs(res.Loss-resB.Loss), res.Accuracy)
			}
			continue
		}
		if (i+1)%every == 0 {
			fmt.Printf("step %4d  loss %.4f  acc %.3f  lr %.4g\n", i+1, res.Loss, res.Accuracy, tr.Opt.LR)
		}
	}
	fmt.Printf("%s wall-clock: %.1f ms/step\n", sp.Restructure, float64(tScenario.Milliseconds())/float64(sp.Steps))
	if base != nil {
		fmt.Printf("baseline wall-clock: %.1f ms/step\n", float64(tBase.Milliseconds())/float64(sp.Steps))
		fmt.Printf("final mean loss: %s %.4f vs baseline %.4f\n", sp.Restructure, tr.MeanLoss(10), base.MeanLoss(10))
	}
	if save != "" {
		if err := tr.Exec.SaveFile(save); err != nil {
			return fmt.Errorf("save checkpoint: %w", err)
		}
		fmt.Printf("saved checkpoint to %s\n", save)
	}
	if profile {
		fmt.Printf("\nmeasured layer breakdown (%s, %d steps):\n", sp.Restructure, sp.Steps)
		if err := obs.LayerBreakdown(tracer.Spans()).WriteTable(os.Stdout, nil); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, tracer.Spans(), 1); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", tracePath)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
