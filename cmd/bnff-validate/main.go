// bnff-validate cross-checks the Figure 5 sweep accounting against the
// trace-driven cache simulator: it replays a full training iteration of a
// model through a set-associative cache and compares the resulting DRAM
// traffic with the cost model's sweep totals. The two are independent
// implementations of the same operator semantics, so agreement validates
// both; it also reports the cache-filtering regime at small batch sizes,
// the paper's justification for why BN becomes a bottleneck only at 100+.
//
// Usage:
//
//	bnff-validate -model tiny-densenet -scenario bnff -batch 256
//	bnff-validate -model tiny-resnet -sweep-batches
package main

import (
	"flag"
	"fmt"
	"os"

	"bnff/internal/cachesim"
	"bnff/internal/core"
	"bnff/internal/graph"
	"bnff/internal/models"
)

func main() {
	model := flag.String("model", "tiny-densenet", fmt.Sprintf("model: one of %v", models.Names()))
	scen := flag.String("scenario", "bnff", "scenario: baseline, rcf, rcf+mvf, bnff, bnff+icf")
	batch := flag.Int("batch", 256, "mini-batch size")
	cacheMB := flag.Int("cache-mb", 1, "cache capacity in MiB")
	sweep := flag.Bool("sweep-batches", false, "sweep batch sizes to show the cache-filtering regime")
	flag.Parse()

	if err := run(*model, *scen, *batch, *cacheMB, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "bnff-validate:", err)
		os.Exit(1)
	}
}

func build(model string, batch int) (*graph.Graph, error) {
	return models.Build(model, batch)
}

func parseScenario(s string) (core.Scenario, error) {
	switch s {
	case "baseline":
		return core.Baseline, nil
	case "rcf":
		return core.RCF, nil
	case "rcf+mvf", "mvf":
		return core.RCFMVF, nil
	case "bnff":
		return core.BNFF, nil
	case "bnff+icf", "icf":
		return core.BNFFICF, nil
	}
	return 0, fmt.Errorf("unknown scenario %q", s)
}

func measure(model string, scenario core.Scenario, batch, cacheMB int) (replay, sweeps int64, err error) {
	g, err := build(model, batch)
	if err != nil {
		return 0, 0, err
	}
	if err := core.Restructure(g, scenario.Options()); err != nil {
		return 0, 0, err
	}
	costs, err := g.TrainingCosts()
	if err != nil {
		return 0, 0, err
	}
	for _, c := range costs {
		for _, sw := range c.Sweeps {
			if sw.Kind == graph.SweepFeatureMap {
				sweeps += sw.Bytes
			}
		}
	}
	cache, err := cachesim.New(cacheMB<<20, 64, 16)
	if err != nil {
		return 0, 0, err
	}
	if err := cachesim.ReplayTraining(cache, g); err != nil {
		return 0, 0, err
	}
	return cache.Stats().DRAMBytes(cache.LineSize()), sweeps, nil
}

func run(model, scen string, batch, cacheMB int, sweep bool) error {
	scenario, err := parseScenario(scen)
	if err != nil {
		return err
	}
	if sweep {
		fmt.Printf("%s %v, %d MiB cache: replayed DRAM vs sweep accounting across batch sizes\n",
			model, scenario, cacheMB)
		fmt.Printf("%8s %14s %14s %10s\n", "batch", "replay GB", "sweeps GB", "ratio")
		for _, b := range []int{1, 4, 16, 64, 256} {
			replay, sweeps, err := measure(model, scenario, b, cacheMB)
			if err != nil {
				return err
			}
			fmt.Printf("%8d %14.4f %14.4f %10.3f\n", b,
				float64(replay)/1e9, float64(sweeps)/1e9, float64(replay)/float64(sweeps))
		}
		fmt.Println("\nratio → 1 as the batch grows: once maps spill the cache, every sweep")
		fmt.Println("is real DRAM traffic — the regime the paper's analysis assumes.")
		return nil
	}
	replay, sweeps, err := measure(model, scenario, batch, cacheMB)
	if err != nil {
		return err
	}
	ratio := float64(replay) / float64(sweeps)
	fmt.Printf("%s %v batch %d, %d MiB cache:\n", model, scenario, batch, cacheMB)
	fmt.Printf("  cost-model sweeps: %.4f GB\n", float64(sweeps)/1e9)
	fmt.Printf("  cache-sim replay : %.4f GB (ratio %.3f)\n", float64(replay)/1e9, ratio)
	if ratio > 0.9 && ratio < 1.1 {
		fmt.Println("  -> agreement within 10%: the sweep accounting is validated by the trace.")
	} else {
		fmt.Println("  -> divergence: the cache is filtering sweeps (small batch) or the model disagrees.")
	}
	return nil
}
