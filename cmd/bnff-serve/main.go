// bnff-serve serves a trained model over HTTP with dynamic micro-batching:
// single-image POST /predict requests are coalesced into mini-batches
// (dispatched when -max-batch images are queued or -max-wait expires) and run
// on a pool of replica inference executors. With -fold (the default) every
// foldable CONV→BN pair is compiled into a single biased CONV at load time,
// so serving pays no separate normalization sweep.
//
// Usage:
//
//	bnff-serve -model tiny-cnn -checkpoint model.ckpt -addr :8080
//	bnff-serve -model tiny-cnn -train-steps 30   # self-train a demo checkpoint
//
// Endpoints: POST /predict {"image":[...]} → {"logits":[...],"class":N},
// GET /healthz, GET /stats. The daemon exits cleanly on SIGINT/SIGTERM.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bnff/internal/core"
	"bnff/internal/graph"
	"bnff/internal/models"
	"bnff/internal/serve"
	"bnff/internal/train"
	"bnff/internal/workload"
)

func main() {
	model := flag.String("model", "tiny-cnn", fmt.Sprintf("model: one of %v (tiny-* serve quickly)", models.Names()))
	ckpt := flag.String("checkpoint", "", "checkpoint to serve; empty self-trains -train-steps steps first")
	steps := flag.Int("train-steps", 30, "self-training steps when no -checkpoint is given")
	batch := flag.Int("train-batch", 16, "self-training mini-batch size")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	maxBatch := flag.Int("max-batch", 8, "maximum requests coalesced into one inference batch")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "how long a partial batch waits for more requests")
	replicas := flag.Int("replicas", 2, "replica inference workers")
	queue := flag.Int("queue", 0, "request queue depth (0: 4 x max-batch x replicas)")
	workers := flag.Int("workers", 1, "worker goroutines per replica executor")
	fold := flag.Bool("fold", true, "fold CONV-BN pairs into biased CONVs at load time")
	seed := flag.Uint64("seed", 42, "parameter and self-training seed")
	flag.Parse()

	if err := run(*model, *ckpt, *addr, *steps, *batch, *maxBatch, *replicas, *queue, *workers,
		*maxWait, *fold, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "bnff-serve:", err)
		os.Exit(1)
	}
}

func run(model, ckptPath, addr string, steps, batch, maxBatch, replicas, queue, workers int,
	maxWait time.Duration, fold bool, seed uint64) error {

	var ckpt io.Reader
	if ckptPath != "" {
		f, err := os.Open(ckptPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ckpt = f
		fmt.Printf("serving %s from checkpoint %s\n", model, ckptPath)
	} else {
		buf, err := selfTrain(model, steps, batch, workers, seed)
		if err != nil {
			return fmt.Errorf("self-training %s: %w", model, err)
		}
		ckpt = buf
	}

	builder := func(b int) (*graph.Graph, error) { return models.Build(model, b) }
	// Monotonic nanoseconds for the engine's latency accounting; the library
	// never reads the wall clock itself (the seededrand contract).
	base := time.Now()
	eng, err := serve.Load(builder, ckpt, serve.Config{
		MaxBatch:   maxBatch,
		MaxWait:    maxWait,
		Replicas:   replicas,
		QueueDepth: queue,
		Workers:    workers,
		FoldBN:     fold,
		Seed:       seed,
		Clock:      func() int64 { return int64(time.Since(base)) },
	})
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s  (image floats: %d, classes: %d, max-batch %d, replicas %d, fold %v)\n",
		addr, eng.ImageLen(), eng.Classes(), maxBatch, replicas, fold)
	return serve.Daemon(context.Background(), addr, eng)
}

// selfTrain produces a demo checkpoint in memory: a few SGD steps on the
// synthetic workload, enough for the served model to have meaningful running
// statistics. Real deployments pass -checkpoint from bnff-train -save.
func selfTrain(model string, steps, batch, workers int, seed uint64) (*bytes.Buffer, error) {
	g, err := models.Build(model, batch)
	if err != nil {
		return nil, err
	}
	exec, err := core.NewExecutor(g, core.WithSeed(seed), core.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	data, err := workload.New(workload.Config{
		Classes: g.Output.OutShape[1], Channels: g.Nodes[0].OutShape[1],
		Size: g.Nodes[0].OutShape[2], Noise: 0.3, Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	tr, err := train.NewTrainer(exec, data,
		train.WithBatchSize(batch), train.WithOptimizer(train.NewSGD(0.01, 0.9, 1e-4)))
	if err != nil {
		return nil, err
	}
	fmt.Printf("self-training %s: %d steps at batch %d\n", model, steps, batch)
	for i := 0; i < steps; i++ {
		x, labels, err := data.Batch(batch)
		if err != nil {
			return nil, err
		}
		res, err := tr.StepOn(x, labels)
		if err != nil {
			return nil, err
		}
		if (i+1)%10 == 0 || i == steps-1 {
			fmt.Printf("step %3d  loss %.4f  acc %.3f\n", i+1, res.Loss, res.Accuracy)
		}
	}
	var buf bytes.Buffer
	if err := exec.Save(&buf); err != nil {
		return nil, err
	}
	return &buf, nil
}
