// bnff-bench regenerates the paper's tables and figures from the analytical
// machine model and prints paper-vs-measured comparisons.
//
// Usage:
//
//	bnff-bench                 # run everything at the paper's batch size
//	bnff-bench -exp fig7       # one experiment
//	bnff-bench -exp headline -batch 64
//
// Experiment identifiers: table1, fig1, fig3, fig4, fig6, fig7, fig8, gpu,
// headline, or "all".
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"bnff/internal/experiments"
	"bnff/internal/layers"
	"bnff/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, fig1..fig8, gpu, headline, ext-mobilenet, all)")
	batch := flag.Int("batch", experiments.DefaultBatch, "mini-batch size for the simulated training iteration")
	format := flag.String("format", "text", "output format: text, csv")
	workers := flag.Int("workers", layers.DefaultConvWorkers(), "worker goroutines for any numeric executor built in-process (analytical experiments are unaffected)")
	flag.Parse()

	parallel.SetDefault(*workers)
	if err := run(*exp, *batch, *format); err != nil {
		fmt.Fprintln(os.Stderr, "bnff-bench:", err)
		os.Exit(1)
	}
}

func collect(exp string, batch int) ([]*experiments.Experiment, error) {
	if exp == "all" {
		return experiments.All(batch)
	}
	e, err := experiments.ByID(exp, batch)
	if err != nil {
		return nil, err
	}
	return []*experiments.Experiment{e}, nil
}

func run(exp string, batch int, format string) error {
	all, err := collect(exp, batch)
	if err != nil {
		return err
	}
	switch format {
	case "text":
		for _, e := range all {
			fmt.Println(e)
		}
		return nil
	case "csv":
		return writeCSV(os.Stdout, all)
	default:
		return fmt.Errorf("unknown format %q (want text, csv)", format)
	}
}

func writeCSV(f *os.File, all []*experiments.Experiment) error {
	w := csv.NewWriter(f)
	if err := w.Write([]string{"experiment", "metric", "measured", "paper", "unit"}); err != nil {
		return err
	}
	for _, e := range all {
		for _, mt := range e.Metrics {
			paper := ""
			if !math.IsNaN(mt.Paper) {
				paper = strconv.FormatFloat(mt.Paper, 'g', 6, 64)
			}
			if err := w.Write([]string{e.ID, mt.Name,
				strconv.FormatFloat(mt.Measured, 'g', 6, 64), paper, mt.Unit}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
