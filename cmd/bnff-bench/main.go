// bnff-bench regenerates the paper's tables and figures from the analytical
// machine model and prints paper-vs-measured comparisons.
//
// Usage:
//
//	bnff-bench                 # run everything at the paper's batch size
//	bnff-bench -exp fig7       # one experiment
//	bnff-bench -exp headline -batch 64
//
// Experiment identifiers: table1, fig1..fig8, gpu, headline, structure,
// ext-mobilenet, ext-footprint, ext-energy, or "all".
//
// With -profile (optionally -trace), bnff-bench instead prints the *modeled*
// per-class layer breakdown of one model across every restructuring scenario
// and writes the modeled Chrome traces — the analytical counterpart of
// bnff-profile's measured run.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"bnff/internal/core"
	"bnff/internal/experiments"
	"bnff/internal/graph"
	"bnff/internal/memsim"
	"bnff/internal/models"
	"bnff/internal/obs"
	"bnff/internal/scenario"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, fig1..fig8, gpu, headline, structure, ext-*, all)")
	batch := flag.Int("batch", experiments.DefaultBatch, "mini-batch size for the simulated training iteration")
	format := flag.String("format", "text", "output format: text, csv")
	profile := flag.Bool("profile", false, "print the modeled layer breakdown of -model per scenario instead of running experiments")
	scenName := flag.String("scenario", "", "with -profile: take model/batch from this builtin train scenario; set flags override")
	model := flag.String("model", "tiny-densenet", fmt.Sprintf("model for -profile/-trace: one of %v", models.Names()))
	tracePfx := flag.String("trace", "", "with -profile: path prefix for modeled Chrome trace files (<prefix>.<scenario>.model.trace.json)")
	flag.Parse()

	var err error
	if *profile || *tracePfx != "" {
		var sp scenario.Spec
		sp, err = resolveSpec(*scenName, func(sp *scenario.Spec) {
			flag.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "model":
					sp.Model = *model
				case "batch":
					sp.Batch = *batch
				}
			})
		}, scenario.Spec{
			Name:  "cli/bench",
			Kind:  scenario.KindTrain,
			Model: *model,
			Batch: *batch,
		})
		if err == nil {
			err = runProfile(sp, *tracePfx)
		}
	} else {
		err = run(*exp, *batch, *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bnff-bench:", err)
		os.Exit(1)
	}
}

// resolveSpec layers explicitly set flags over the named builtin scenario,
// or returns the flag-assembled spec when no name is given.
func resolveSpec(name string, override func(*scenario.Spec), fromFlags scenario.Spec) (scenario.Spec, error) {
	sp := fromFlags
	if name != "" {
		reg := scenario.Builtin()
		got, ok := reg.Get(name)
		if !ok {
			return scenario.Spec{}, fmt.Errorf("unknown scenario %q (builtin: %v)", name, reg.Names())
		}
		if got.Kind != scenario.KindTrain {
			return scenario.Spec{}, fmt.Errorf("scenario %q is a %s scenario; -profile models training", name, got.Kind)
		}
		sp = got
		override(&sp)
	}
	if err := sp.Normalize(); err != nil {
		return scenario.Spec{}, err
	}
	return sp, nil
}

// runProfile prints the memsim-predicted per-class breakdown for every
// restructuring scenario of one model and optionally writes the modeled
// Chrome traces. Breakdown rows reuse obs's table renderer, so this output
// lines up column-for-column with bnff-profile's measured tables.
func runProfile(sp scenario.Spec, tracePfx string) error {
	fmt.Printf("modeled breakdown: model=%s batch=%d machine=Skylake\n\n", sp.Model, sp.Batch)
	for _, sc := range core.Scenarios() {
		spScen := sp
		spScen.Restructure = strings.ToLower(sc.String())
		g, err := spScen.BuildGraph(spScen.Batch)
		if err != nil {
			return err
		}
		report, err := memsim.Simulate(g, memsim.Skylake())
		if err != nil {
			return err
		}
		fmt.Printf("== %v ==\n", sc)
		total := report.Total()
		byClass := report.TimeByClass()
		fwd, bwd := report.PassTime(graph.Forward), report.PassTime(graph.Backward)
		fmt.Printf("%-14s %10s %9s\n", "class", "total ms", "share")
		for _, row := range obs.CompareShares(nil, sharesOf(byClass, total)) {
			fmt.Printf("%-14s %10.3f %8.1f%%\n", row.Cat, row.Modeled*total*1e3, 100*row.Modeled)
		}
		conv, nonConv := report.ConvSplit()
		fmt.Printf("total %.3f ms (fwd %.3f, bwd %.3f); non-CONV %.1f%%\n\n",
			total*1e3, fwd*1e3, bwd*1e3, 100*nonConv/(conv+nonConv))
		if tracePfx != "" {
			name := strings.ReplaceAll(spScen.Restructure, "+", "-")
			path := fmt.Sprintf("%s.%s.model.trace.json", tracePfx, name)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := report.ChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace: %s\n\n", path)
		}
	}
	return nil
}

func sharesOf(byClass map[graph.LayerClass]float64, total float64) map[string]float64 {
	out := make(map[string]float64, len(byClass))
	if total == 0 {
		return out
	}
	for cls, t := range byClass {
		out[cls.String()] = t / total
	}
	return out
}

func collect(exp string, batch int) ([]*experiments.Experiment, error) {
	if exp == "all" {
		return experiments.All(batch)
	}
	e, err := experiments.ByID(exp, batch)
	if err != nil {
		return nil, err
	}
	return []*experiments.Experiment{e}, nil
}

func run(exp string, batch int, format string) error {
	all, err := collect(exp, batch)
	if err != nil {
		return err
	}
	switch format {
	case "text":
		for _, e := range all {
			fmt.Println(e)
		}
		return nil
	case "csv":
		return writeCSV(os.Stdout, all)
	default:
		return fmt.Errorf("unknown format %q (want text, csv)", format)
	}
}

func writeCSV(f *os.File, all []*experiments.Experiment) error {
	w := csv.NewWriter(f)
	if err := w.Write([]string{"experiment", "metric", "measured", "paper", "unit"}); err != nil {
		return err
	}
	for _, e := range all {
		for _, mt := range e.Metrics {
			paper := ""
			if !math.IsNaN(mt.Paper) {
				paper = strconv.FormatFloat(mt.Paper, 'g', 6, 64)
			}
			if err := w.Write([]string{e.ID, mt.Name,
				strconv.FormatFloat(mt.Measured, 'g', 6, 64), paper, mt.Unit}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
