// bnff-profile measures where training time actually goes and compares it
// with the analytical machine model's prediction. For each restructuring
// scenario it runs real traced training steps on a scaled model, prints the
// paper-Figure-1-style layer breakdown (measured share next to the memsim
// modeled share), and writes measured and modeled Chrome traces that load
// side by side in chrome://tracing or ui.perfetto.dev.
//
// Usage:
//
//	bnff-profile -model tiny-densenet
//	bnff-profile -model tiny-resnet -steps 3 -workers 4 -trace out/resnet
//	bnff-profile -model tiny-cnn -clock step        # deterministic traces
//
// Files written per scenario (prefix from -trace, empty disables):
//
//	<prefix>.<scenario>.trace.json        measured spans
//	<prefix>.<scenario>.model.trace.json  memsim prediction
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"bnff/internal/core"
	"bnff/internal/graph"
	"bnff/internal/memplan"
	"bnff/internal/memsim"
	"bnff/internal/models"
	"bnff/internal/obs"
	"bnff/internal/scenario"
	"bnff/internal/train"
)

func main() {
	scenName := flag.String("scenario", "", "start from this builtin train scenario; set flags override its fields")
	model := flag.String("model", "tiny-densenet", fmt.Sprintf("model: one of %v", models.Names()))
	batch := flag.Int("batch", 16, "mini-batch size")
	steps := flag.Int("steps", 1, "traced training steps per scenario")
	workers := flag.Int("workers", 1, "worker goroutines per executor")
	tracePfx := flag.String("trace", "bnff-profile", "path prefix for Chrome trace files (empty: no files)")
	clock := flag.String("clock", "wall", "span clock: wall (real time) or step (deterministic fake)")
	seed := flag.Uint64("seed", 42, "parameter and data seed")
	arena := flag.Bool("arena", true, "serve activations from the liveness-driven arena and report measured vs planned peak")
	flag.Parse()

	sp, err := resolveSpec(*scenName, func(sp *scenario.Spec) {
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "model":
				sp.Model = *model
			case "batch":
				sp.Batch = *batch
			case "steps":
				sp.Steps = *steps
			case "workers":
				sp.Workers = *workers
			case "seed":
				sp.Seed = *seed
			case "arena":
				sp.NoArena = !*arena
			}
		})
	}, scenario.Spec{
		Name:    "cli/profile",
		Kind:    scenario.KindTrain,
		Model:   *model,
		Batch:   *batch,
		Steps:   *steps,
		Workers: *workers,
		Seed:    *seed,
		NoArena: !*arena,
	})
	if err == nil {
		err = run(sp, *tracePfx, *clock)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bnff-profile:", err)
		os.Exit(1)
	}
}

// resolveSpec layers explicitly set flags over the named builtin scenario,
// or returns the flag-assembled spec when no name is given. The profile
// sweeps every restructuring itself, so the spec's own Restructure field is
// overwritten per iteration.
func resolveSpec(name string, override func(*scenario.Spec), fromFlags scenario.Spec) (scenario.Spec, error) {
	sp := fromFlags
	if name != "" {
		reg := scenario.Builtin()
		got, ok := reg.Get(name)
		if !ok {
			return scenario.Spec{}, fmt.Errorf("unknown scenario %q (builtin: %v)", name, reg.Names())
		}
		if got.Kind != scenario.KindTrain {
			return scenario.Spec{}, fmt.Errorf("scenario %q is a %s scenario; this command profiles training", name, got.Kind)
		}
		sp = got
		override(&sp)
	}
	if err := sp.Normalize(); err != nil {
		return scenario.Spec{}, err
	}
	return sp, nil
}

// newClock builds the tracer clock named by -clock. The step clock advances a
// fixed stride per reading, so span layout depends only on the recording
// order — two runs of the same build produce byte-identical trace files.
func newClock(kind string) (func() int64, error) {
	switch kind {
	case "wall":
		return obs.WallClock(), nil
	case "step":
		return obs.StepClock(1000), nil
	default:
		return nil, fmt.Errorf("unknown clock %q (want wall, step)", kind)
	}
}

// scenarioResult is one scenario's measured and modeled outcome.
type scenarioResult struct {
	scenario  core.Scenario
	measured  obs.Breakdown
	modeled   map[string]float64 // share of modeled iteration time per class
	modelSec  float64            // memsim total iteration seconds
	arenaPeak int64              // measured arena peak bytes (0 without -arena)
	planPeak  int64              // memplan's predicted activation peak bytes
}

func run(sp scenario.Spec, tracePfx, clockKind string) error {
	fmt.Printf("model=%s batch=%d steps=%d workers=%d clock=%s arena=%t machine=Skylake\n\n",
		sp.Model, sp.Batch, sp.Steps, sp.Workers, clockKind, !sp.NoArena)

	var results []scenarioResult
	for _, sc := range core.Scenarios() {
		spScen := sp
		spScen.Restructure = strings.ToLower(sc.String())
		res, err := profileScenario(spScen, sc, tracePfx, clockKind)
		if err != nil {
			return fmt.Errorf("%v: %w", sc, err)
		}
		results = append(results, res)

		fmt.Printf("== %v ==\n", sc)
		if err := res.measured.WriteTable(os.Stdout, res.modeled); err != nil {
			return err
		}
		fmt.Printf("measured %.1f ms over %d step(s); model predicts %.3f ms/iteration\n\n",
			float64(res.measured.TotalNs)/1e6, sp.Steps, res.modelSec*1e3)
	}
	return summarize(os.Stdout, results)
}

func profileScenario(sp scenario.Spec, sc core.Scenario, tracePfx, clockKind string) (scenarioResult, error) {
	g, err := sp.BuildGraph(sp.Batch)
	if err != nil {
		return scenarioResult{}, err
	}
	report, err := memsim.Simulate(g, memsim.Skylake())
	if err != nil {
		return scenarioResult{}, err
	}
	res := scenarioResult{
		scenario: sc,
		modeled:  modeledShares(report),
		modelSec: report.Total(),
	}

	clk, err := newClock(clockKind)
	if err != nil {
		return scenarioResult{}, err
	}
	tracer := obs.NewTracer(clk)
	if !sp.NoArena {
		// Predicted peak comes from the same intervals the arena's release
		// table is compiled from, so measured-vs-planned is apples to apples.
		plan, err := memplan.PlanTraining(g)
		if err != nil {
			return scenarioResult{}, err
		}
		res.planPeak = plan.PeakBytes
	}
	tr, err := sp.NewTrainer(train.WithTracer(tracer))
	if err != nil {
		return scenarioResult{}, err
	}
	if _, err := tr.Run(sp.Steps); err != nil {
		return scenarioResult{}, err
	}
	res.measured = obs.LayerBreakdown(tracer.Spans())
	if !sp.NoArena {
		res.arenaPeak = tr.Exec.ArenaStats().PeakBytes
	}

	if tracePfx != "" {
		if err := writeTraces(tracePfx, sc, tracer, report); err != nil {
			return scenarioResult{}, err
		}
	}
	return res, nil
}

// modeledShares converts a memsim report into per-class time shares keyed
// like the measured breakdown (graph.LayerClass names).
func modeledShares(r *memsim.Report) map[string]float64 {
	total := r.Total()
	out := make(map[string]float64)
	if total == 0 {
		return out
	}
	for cls, t := range r.TimeByClass() {
		out[cls.String()] = t / total
	}
	return out
}

// fileScenario flattens a scenario name for a filename ("BNFF+ICF" →
// "bnff-icf").
func fileScenario(s core.Scenario) string {
	name := strings.ToLower(s.String())
	name = strings.ReplaceAll(name, "+", "-")
	return name
}

func writeTraces(prefix string, scenario core.Scenario, tracer *obs.Tracer, report *memsim.Report) error {
	measured := fmt.Sprintf("%s.%s.trace.json", prefix, fileScenario(scenario))
	f, err := os.Create(measured)
	if err != nil {
		return err
	}
	// pid 1 measured, pid 2 modeled: the two processes sit side by side when
	// both files load into one viewer.
	if err := obs.WriteChromeTrace(f, tracer.Spans(), 1); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	modeled := fmt.Sprintf("%s.%s.model.trace.json", prefix, fileScenario(scenario))
	f, err = os.Create(modeled)
	if err != nil {
		return err
	}
	if err := report.ChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("traces: %s, %s\n", measured, modeled)
	return nil
}

// summarize prints the cross-scenario table the paper's Figure 1 motivates:
// how much of the iteration is not convolution, measured vs modeled, and how
// far restructuring shrinks it relative to the baseline.
func summarize(w *os.File, results []scenarioResult) error {
	convName := graph.ClassConv.String()
	nonConv := func(r scenarioResult) (measured, modeled float64) {
		measured = 1 - r.measured.ShareOf(convName)
		var convShare float64
		for _, row := range obs.CompareShares(nil, r.modeled) {
			if row.Cat == convName {
				convShare = row.Modeled
			}
		}
		return measured, 1 - convShare
	}

	// shareGap is the total-variation distance between the measured and
	// modeled per-class share distributions (Σ|measured−modeled|/2): 0 means
	// the measured breakdown matches the roofline model exactly, 1 means
	// disjoint. The blocked-kernel work tracks this converging toward 0.
	shareGap := func(r scenarioResult) float64 {
		var gap float64
		seen := make(map[string]bool, len(r.measured.Rows))
		for _, row := range r.measured.Rows {
			gap += math.Abs(row.Share - r.modeled[row.Cat])
			seen[row.Cat] = true
		}
		for _, row := range obs.CompareShares(nil, r.modeled) {
			if !seen[row.Cat] {
				gap += row.Modeled
			}
		}
		return gap / 2
	}

	fmt.Fprintf(w, "== non-CONV share by scenario (measured vs modeled) ==\n")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "scenario", "total ms", "non-CONV", "modeled", "share gap")
	sort.SliceStable(results, func(i, j int) bool { return results[i].scenario < results[j].scenario })
	for _, r := range results {
		m, p := nonConv(r)
		fmt.Fprintf(w, "%-10v %12.3f %11.1f%% %11.1f%% %11.1f%%\n",
			r.scenario, float64(r.measured.TotalNs)/1e6, 100*m, 100*p, 100*shareGap(r))
	}
	if len(results) > 1 {
		base, _ := nonConv(results[0])
		last := results[len(results)-1]
		m, _ := nonConv(last)
		fmt.Fprintf(w, "\nnon-CONV share: %.1f%% (%v) -> %.1f%% (%v)\n",
			100*base, results[0].scenario, 100*m, last.scenario)
	}
	if results[0].arenaPeak > 0 {
		fmt.Fprintf(w, "\n== activation memory: arena peak, measured vs planned ==\n")
		fmt.Fprintf(w, "%-10s %14s %14s %8s\n", "scenario", "measured MB", "planned MB", "ratio")
		for _, r := range results {
			fmt.Fprintf(w, "%-10v %14.2f %14.2f %7.2fx\n",
				r.scenario, float64(r.arenaPeak)/1e6, float64(r.planPeak)/1e6,
				float64(r.arenaPeak)/float64(r.planPeak))
		}
		fmt.Fprintf(w, "(planned = memplan training-interval peak; measured includes workspace the plan prices identically)\n")
	}
	return nil
}
