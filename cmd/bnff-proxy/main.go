// bnff-proxy fronts a fleet of bnff-serve backends: POST /predict requests
// are routed across the registered backends by a deterministic policy
// (consistent hashing on the request key by default), unhealthy backends are
// ejected after consecutive failed readiness probes and readmitted on
// recovery, and POST /fleet/reload rolls a new checkpoint through the fleet
// one drained backend at a time — serving capacity never drops below N−1
// and no accepted request is lost.
//
// Usage:
//
//	bnff-proxy -addr :9090 -backends http://127.0.0.1:9091,http://127.0.0.1:9092
//	bnff-proxy -addr :9090 -policy least-loaded -probe-interval 500ms
//
// Endpoints: POST /predict (bnff-serve's body, optional X-Route-Key header),
// GET /healthz, GET /readyz, GET /metrics, GET /fleet/status, and the
// POST /fleet/{register,deregister,drain,undrain,reload} admin verbs. The
// daemon exits cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bnff/internal/fleet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	backends := flag.String("backends", "", "comma-separated backend base URLs (e.g. http://127.0.0.1:9091,http://127.0.0.1:9092); names default to b0,b1,...")
	policy := flag.String("policy", "hash", "routing policy: hash, least-loaded, or round-robin")
	probeInterval := flag.Duration("probe-interval", time.Second, "readiness probe sweep interval")
	failAfter := flag.Int("fail-after", 3, "consecutive failed probes before a backend is ejected")
	readmitAfter := flag.Int("readmit-after", 2, "consecutive successful probes before an ejected backend is readmitted")
	backoff := flag.Duration("backoff", time.Second, "initial ejected re-probe backoff (doubles up to -backoff-max)")
	backoffMax := flag.Duration("backoff-max", 30*time.Second, "ejected re-probe backoff cap")
	flag.Parse()

	if err := run(*addr, *backends, *policy, *probeInterval, *failAfter, *readmitAfter, *backoff, *backoffMax); err != nil {
		fmt.Fprintln(os.Stderr, "bnff-proxy:", err)
		os.Exit(1)
	}
}

func run(addr, backends, policyName string, probeInterval time.Duration,
	failAfter, readmitAfter int, backoff, backoffMax time.Duration) error {

	policy, err := fleet.PolicyByName(policyName)
	if err != nil {
		return err
	}
	// Monotonic nanoseconds for ejection backoff; the library never reads
	// the wall clock itself (the seededrand contract).
	base := time.Now()
	proxy := fleet.NewProxy(fleet.Config{
		Policy:       policy,
		FailAfter:    failAfter,
		ReadmitAfter: readmitAfter,
		BackoffBase:  int64(backoff),
		BackoffMax:   int64(backoffMax),
		Clock:        func() int64 { return int64(time.Since(base)) },
	})
	cp := proxy.ControlPlane()
	if backends != "" {
		for i, url := range strings.Split(backends, ",") {
			url = strings.TrimSpace(url)
			if url == "" {
				continue
			}
			name := fmt.Sprintf("b%d", i)
			if err := cp.Register(name, fleet.NewHTTPConn(url)); err != nil {
				return err
			}
			fmt.Printf("registered %s -> %s\n", name, url)
		}
	}
	fmt.Printf("proxy listening on %s  (policy %s, %d backends, probe every %v)\n",
		addr, policy.Name(), len(cp.Status().Backends), probeInterval)
	return fleet.Daemon(context.Background(), addr, proxy, probeInterval)
}
