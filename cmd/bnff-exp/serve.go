package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"bnff/internal/core"
	"bnff/internal/experiments"
	"bnff/internal/models"
	"bnff/internal/obs"
	"bnff/internal/parallel"
	"bnff/internal/scenario"
	"bnff/internal/serve"
	"bnff/internal/tensor"
	"bnff/internal/workload"
)

// maxServeImages caps the distinct request images per scenario; every
// request cycles through this set, and each image has one precomputed
// batch-1 reference logits vector to bit-compare against.
const maxServeImages = 8

// runServe executes one serving scenario Repeats times: load an engine from
// a deterministic checkpoint, replay the spec's traffic plan through
// concurrent clients, and evaluate the embedded checks — every answered
// request bit-matching the batch-1 reference, plus the chaos drill the
// traffic shape selects. Request counts are deterministic except under
// overload (shedding depends on scheduling), so those aggregates carry the
// timing flag there.
func (r *runner) runServe(sp scenario.Spec) (experiments.BenchScenario, error) {
	ckpt, err := r.checkpoint(sp)
	if err != nil {
		return experiments.BenchScenario{}, err
	}
	images, refs, err := r.references(sp, ckpt)
	if err != nil {
		return experiments.BenchScenario{}, err
	}
	var refBytes bytes.Buffer
	for _, logits := range refs {
		for _, v := range logits {
			fmt.Fprintf(&refBytes, "%08x", math.Float32bits(v))
		}
	}

	var answered, shed, p50s, p99s, rps []float64
	failures := map[string]string{} // check name → first failure detail
	for rep := 0; rep < sp.Repeats; rep++ {
		out, err := r.serveOnce(sp, ckpt, images, refs)
		if err != nil {
			return experiments.BenchScenario{}, err
		}
		answered = append(answered, float64(out.answered))
		shed = append(shed, float64(out.shed))
		p50s = append(p50s, float64(out.p50))
		p99s = append(p99s, float64(out.p99))
		if sp.Backends > 0 {
			rate := 0.0
			if out.elapsedNs > 0 {
				rate = float64(out.answered) / (float64(out.elapsedNs) / 1e9)
			}
			rps = append(rps, rate)
		}
		for name, detail := range out.failures {
			if _, seen := failures[name]; !seen {
				failures[name] = fmt.Sprintf("repeat %d: %s", rep, detail)
			}
		}
	}

	var checks []experiments.BenchCheck
	for _, name := range sp.Checks() {
		detail, failed := failures[name]
		checks = append(checks, experiments.BenchCheck{Name: name, Pass: !failed, Detail: detail})
	}
	// Under overload the split between answered and shed depends on goroutine
	// scheduling; elsewhere every request is answered, deterministically.
	countsVary := sp.Traffic == scenario.TrafficOverload || sp.Traffic == scenario.TrafficProxyOverload
	metrics := []experiments.BenchMetric{
		{Name: "answered", Unit: "requests", Timing: countsVary, Agg: obs.Aggregate(answered)},
		{Name: "shed", Unit: "requests", Timing: countsVary, Agg: obs.Aggregate(shed)},
		{Name: "latency_p50", Unit: "ns", Timing: true, Agg: obs.Aggregate(p50s)},
		{Name: "latency_p99", Unit: "ns", Timing: true, Agg: obs.Aggregate(p99s)},
	}
	if sp.Backends > 0 {
		// The multi-process scaling evidence: answered requests per wall
		// second through the proxy, at this spec's backend count.
		metrics = append(metrics, experiments.BenchMetric{
			Name: "requests_per_sec", Unit: "req/s", Timing: true, Agg: obs.Aggregate(rps)})
	}
	return experiments.BenchScenario{
		Name:    sp.Name,
		Spec:    sp,
		Repeats: sp.Repeats,
		Digest:  digestOf(refBytes.Bytes()),
		Checks:  checks,
		Metrics: metrics,
	}, nil
}

// serveOutcome is one repeat's tallies and check failures.
type serveOutcome struct {
	answered, shed, errored int
	p50, p99                int64
	elapsedNs               int64
	failures                map[string]string
}

func (o *serveOutcome) fail(check, format string, args ...any) {
	if _, seen := o.failures[check]; !seen {
		o.failures[check] = fmt.Sprintf(format, args...)
	}
}

// serveOnce runs one repeat of the scenario's drill. Fleet scenarios
// (Backends > 0) route through an in-process front proxy instead of a
// single engine.
func (r *runner) serveOnce(sp scenario.Spec, ckpt []byte, images, refs [][]float32) (*serveOutcome, error) {
	if sp.Backends > 0 {
		return r.serveFleetOnce(sp, ckpt, images, refs)
	}
	out := &serveOutcome{failures: map[string]string{}}
	eng, err := serve.Load(sp.ServeBuilder(), bytes.NewReader(ckpt), sp.ServeConfig(r.clock, nil))
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	switch sp.Traffic {
	case scenario.TrafficCrash:
		err = r.crashDrill(sp, eng, ckpt, images, refs, out)
	case scenario.TrafficDiskFull:
		if derr := r.diskFullDrill(sp, ckpt); derr != nil {
			out.fail("checkpoint-survives-failed-save", "%v", derr)
		}
		// The drill must not have disturbed serving: replay the full plan.
		err = r.runPlan(sp, enginePredict(eng), sp.Requests, images, matchRefs(refs), nil, out)
	default:
		err = r.runPlan(sp, enginePredict(eng), sp.Requests, images, matchRefs(refs), nil, out)
	}
	if err != nil {
		return nil, err
	}

	if sp.Traffic == scenario.TrafficOverload {
		if out.shed == 0 {
			out.fail("overload-sheds", "queue depth %d absorbed all %d requests from %d clients",
				sp.QueueDepth, sp.Requests, sp.Clients)
		}
		if out.answered == 0 {
			out.fail("overload-sheds", "no request was answered under overload")
		}
	} else if out.shed > 0 {
		out.fail("logits-match-reference", "%d requests shed under %s traffic", out.shed, sp.Traffic)
	}
	if out.errored > 0 {
		out.fail("logits-match-reference", "%d requests failed with unexpected errors", out.errored)
	}

	st := eng.Stats()
	out.p50, out.p99 = st.P50Nanos, st.P99Nanos
	return out, nil
}

// predictFn answers one request. The image index selects the request body
// and, for fleet routing, the affinity key.
type predictFn func(image int, img []float32) ([]float32, error)

// enginePredict adapts a single engine to the plan runner.
func enginePredict(eng *serve.Engine) predictFn {
	return func(_ int, img []float32) ([]float32, error) { return eng.Predict(img) }
}

// matchFn validates one answered request's logits, returning the failing
// check name and detail, or ("", "") when the answer is correct.
type matchFn func(image int, logits []float32) (check, detail string)

// matchRefs requires every answer to bit-match its batch-1 reference.
func matchRefs(refs [][]float32) matchFn {
	return func(image int, logits []float32) (string, string) {
		if !equalF32(logits, refs[image]) {
			return "logits-match-reference",
				fmt.Sprintf("image %d logits differ from batch-1 reference", image)
		}
		return "", ""
	}
}

// runPlan replays a traffic plan of n requests through one goroutine per
// client (via the sanctioned pool fan-out; each client writes only its own
// tally slot) and merges the tallies in client order. A non-nil concurrent
// func runs as one extra pool partition alongside the clients — the hook the
// rolling-reload drill uses to swap checkpoints mid-traffic.
func (r *runner) runPlan(sp scenario.Spec, predict predictFn, n int, images [][]float32, match matchFn, concurrent func(), out *serveOutcome) error {
	burst, delayNs := pacing(sp)
	plan, err := workload.PlanTraffic(workload.TrafficConfig{
		Clients:  sp.Clients,
		Requests: n,
		Burst:    burst,
		DelayNs:  delayNs,
		Images:   len(images),
	})
	if err != nil {
		return err
	}
	type tally struct {
		answered, shed, errored int
		failCheck, failDetail   string
	}
	clients := len(plan.PerClient)
	// Overload drills gate every client's first send on a shared barrier so
	// the queue-full shed contract holds structurally — all clients provably
	// hold a request in flight together, exceeding queue + max-batch capacity
	// — rather than depending on a forward pass slow enough for
	// unsynchronized clients to pile up behind. The blocked compute core made
	// forwards fast enough to drain a 2-deep queue between staggered client
	// starts, which is exactly the race this removes.
	var gate *parallel.Barrier
	if sp.Traffic == scenario.TrafficOverload || sp.Traffic == scenario.TrafficProxyOverload {
		gate = parallel.NewBarrier(clients)
	}
	slots := clients
	if concurrent != nil {
		slots++
	}
	tallies := make([]tally, clients)
	pool := parallel.New(slots)
	pool.Run(slots, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			if c == clients {
				concurrent()
				continue
			}
			t := &tallies[c]
			for i, op := range plan.PerClient[c] {
				if i == 0 {
					gate.Arrive() // nil gate is open: non-overload traffic never waits
				}
				if op.DelayNs > 0 {
					time.Sleep(time.Duration(op.DelayNs))
				}
				logits, err := predict(op.Image, images[op.Image])
				switch {
				case err == nil:
					t.answered++
					if check, detail := match(op.Image, logits); check != "" && t.failCheck == "" {
						t.failCheck, t.failDetail = check, detail
					}
				case errors.Is(err, serve.ErrOverloaded):
					t.shed++
				default:
					t.errored++
					if t.failCheck == "" {
						t.failCheck, t.failDetail = "logits-match-reference", err.Error()
					}
				}
			}
		}
	})
	for _, t := range tallies {
		out.answered += t.answered
		out.shed += t.shed
		out.errored += t.errored
		if t.failCheck != "" {
			out.fail(t.failCheck, "%s", t.failDetail)
		}
	}
	return nil
}

// crashDrill is the replica-crash availability drill: serve half the
// traffic, kill replica 0 mid-service, and require the survivors to answer
// the second half bit-identically; then shut down, confirm ErrClosed, and
// confirm a fresh engine loaded from the same checkpoint still bit-matches.
func (r *runner) crashDrill(sp scenario.Spec, eng *serve.Engine, ckpt []byte, images, refs [][]float32, out *serveOutcome) error {
	const check = "replica-crash-recovery"
	half := sp.Requests / 2
	if err := r.runPlan(sp, enginePredict(eng), half, images, matchRefs(refs), nil, out); err != nil {
		return err
	}
	if err := eng.CrashReplica(0); err != nil {
		return err
	}
	before := out.answered
	if err := r.runPlan(sp, enginePredict(eng), sp.Requests-half, images, matchRefs(refs), nil, out); err != nil {
		return err
	}
	if out.answered-before != sp.Requests-half {
		out.fail(check, "surviving replicas answered %d of %d post-crash requests",
			out.answered-before, sp.Requests-half)
	}
	eng.Close()
	if _, err := eng.Predict(images[0]); !errors.Is(err, serve.ErrClosed) {
		out.fail(check, "Predict after Close returned %v, want ErrClosed", err)
	}
	fresh, err := serve.Load(sp.ServeBuilder(), bytes.NewReader(ckpt), sp.ServeConfig(r.clock, nil))
	if err != nil {
		return err
	}
	defer fresh.Close()
	logits, err := fresh.Predict(images[0])
	if err != nil {
		out.fail(check, "reloaded engine: %v", err)
	} else if !equalF32(logits, refs[0]) {
		out.fail(check, "reloaded engine's logits differ from the reference")
	}
	return nil
}

// diskFullDrill simulates checkpointing onto a full disk while serving: a
// save through a writer that runs out of space must fail, leave the previous
// checkpoint byte-identical on disk, and leave no temp-file debris behind.
func (r *runner) diskFullDrill(sp scenario.Spec, ckpt []byte) error {
	dir, err := os.MkdirTemp("", "bnff-exp-diskfull")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ckpt")
	if err := os.WriteFile(path, ckpt, 0o644); err != nil {
		return err
	}
	exec, err := r.refExecutor(sp, ckpt)
	if err != nil {
		return err
	}
	saveErr := exec.SaveFileVia(path, func(w io.Writer) io.Writer {
		return &capWriter{w: w, left: 64}
	})
	if saveErr == nil {
		return fmt.Errorf("save onto a full disk unexpectedly succeeded")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, ckpt) {
		return fmt.Errorf("failed save corrupted the previous checkpoint")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	if len(entries) != 1 {
		return fmt.Errorf("failed save left %d files in the checkpoint directory, want 1", len(entries))
	}
	return nil
}

// pacing maps the spec's traffic shape onto plan parameters: slow-client
// delays every request, bursty inserts a 1 ms gap between bursts, everything
// else sends as fast as the blocking Predict allows.
func pacing(sp scenario.Spec) (burst int, delayNs int64) {
	switch sp.Traffic {
	case scenario.TrafficSlowClient:
		return 1, int64(sp.ClientDelayMS) * int64(time.Millisecond)
	case scenario.TrafficBursty:
		return sp.Burst, int64(time.Millisecond)
	default:
		return 0, 0
	}
}

// checkpoint builds (once per model+seed) the deterministic checkpoint every
// serve scenario loads: seeded parameters plus running statistics tracked
// over a few forward passes of the model's synthetic dataset.
func (r *runner) checkpoint(sp scenario.Spec) ([]byte, error) {
	key := fmt.Sprintf("%s/%d", sp.Model, sp.Seed)
	if b, ok := r.ckpts[key]; ok {
		return b, nil
	}
	const batch = 4
	g, err := models.Build(sp.Model, batch)
	if err != nil {
		return nil, err
	}
	exec, err := core.NewExecutor(g, core.WithSeed(sp.Seed), core.WithRunningStats())
	if err != nil {
		return nil, err
	}
	ds, err := sp.Dataset()
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		x, _, err := ds.Batch(batch)
		if err != nil {
			return nil, err
		}
		if _, err := exec.Forward(x); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	if err := exec.Save(&buf); err != nil {
		return nil, err
	}
	r.ckpts[key] = buf.Bytes()
	return r.ckpts[key], nil
}

// refExecutor builds the batch-1 reference executor exactly the way the
// engine builds its replicas (same seed, workers, inference mode, and fold),
// so its logits are the bit-exact ground truth for served answers.
func (r *runner) refExecutor(sp scenario.Spec, ckpt []byte) (*core.Executor, error) {
	g, err := models.Build(sp.Model, 1)
	if err != nil {
		return nil, err
	}
	opts := []core.Option{core.WithSeed(sp.Seed), core.WithWorkers(sp.Workers), core.WithInference()}
	if sp.Fold {
		opts = append(opts, core.WithFoldedBN())
	}
	exec, err := core.NewExecutor(g, opts...)
	if err != nil {
		return nil, err
	}
	if err := exec.Load(bytes.NewReader(ckpt)); err != nil {
		return nil, err
	}
	return exec, nil
}

// references precomputes the request images (per-class dataset patterns) and
// their batch-1 reference logits.
func (r *runner) references(sp scenario.Spec, ckpt []byte) (images, refs [][]float32, err error) {
	ds, err := sp.Dataset()
	if err != nil {
		return nil, nil, err
	}
	exec, err := r.refExecutor(sp, ckpt)
	if err != nil {
		return nil, nil, err
	}
	n := ds.Classes
	if n > maxServeImages {
		n = maxServeImages
	}
	for i := 0; i < n; i++ {
		pat, err := ds.Pattern(i)
		if err != nil {
			return nil, nil, err
		}
		img := append([]float32(nil), pat.Data...)
		x := tensor.New(1, ds.Channels, ds.Size, ds.Size)
		copy(x.Data, img)
		y, err := exec.Forward(x)
		if err != nil {
			return nil, nil, err
		}
		images = append(images, img)
		refs = append(refs, append([]float32(nil), y.Data...))
	}
	return images, refs, nil
}

// refsFor recomputes the batch-1 reference logits for an existing image set
// under a different checkpoint — the fresh single-process folded reference a
// rolling reload must converge the fleet onto.
func (r *runner) refsFor(sp scenario.Spec, ckpt []byte, images [][]float32) ([][]float32, error) {
	ds, err := sp.Dataset()
	if err != nil {
		return nil, err
	}
	exec, err := r.refExecutor(sp, ckpt)
	if err != nil {
		return nil, err
	}
	refs := make([][]float32, 0, len(images))
	for _, img := range images {
		x := tensor.New(1, ds.Channels, ds.Size, ds.Size)
		copy(x.Data, img)
		y, err := exec.Forward(x)
		if err != nil {
			return nil, err
		}
		refs = append(refs, append([]float32(nil), y.Data...))
	}
	return refs, nil
}

// capWriter fails like a full disk after its byte allowance is spent.
type capWriter struct {
	w    io.Writer
	left int
}

func (c *capWriter) Write(p []byte) (int, error) {
	if len(p) > c.left {
		n := c.left
		c.left = 0
		if n > 0 {
			if _, err := c.w.Write(p[:n]); err != nil {
				return 0, err
			}
		}
		return n, fmt.Errorf("capWriter: no space left on device")
	}
	c.left -= len(p)
	return c.w.Write(p)
}

func equalF32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
