package main

import (
	"bytes"
	"fmt"

	"bnff/internal/det"
	"bnff/internal/fleet"
	"bnff/internal/scenario"
	"bnff/internal/serve"
)

// serveFleetOnce runs one repeat of a fleet scenario: sp.Backends identical
// engines loaded from the same checkpoint sit behind an in-process front
// proxy (EngineConn transport), and every request routes through the proxy
// under the spec's policy with the image index as the affinity key. Steady
// traffic records the requests-per-second scaling ladder; the drill shapes
// exercise the fleet's failure contracts.
func (r *runner) serveFleetOnce(sp scenario.Spec, ckpt []byte, images, refs [][]float32) (*serveOutcome, error) {
	out := &serveOutcome{failures: map[string]string{}}
	proxy, engines, err := r.buildFleet(sp, ckpt)
	if err != nil {
		return nil, err
	}
	defer closeEngines(engines)

	predict := func(image int, img []float32) ([]float32, error) {
		return proxy.Predict(fmt.Sprintf("img-%d", image), img)
	}

	start := r.clock()
	switch sp.Traffic {
	case scenario.TrafficBackendCrash:
		err = r.fleetCrashDrill(sp, engines, predict, images, refs, out)
	case scenario.TrafficRollingReload:
		err = r.fleetReloadDrill(sp, proxy, predict, images, refs, out)
	default: // steady rps ladder, proxy-overload
		err = r.runPlan(sp, predict, sp.Requests, images, matchRefs(refs), nil, out)
	}
	if err != nil {
		return nil, err
	}
	out.elapsedNs = r.clock() - start

	if sp.Traffic == scenario.TrafficProxyOverload {
		if out.shed == 0 {
			out.fail("proxy-overload-sheds", "%d backends with queue depth %d absorbed all %d requests from %d clients",
				sp.Backends, sp.QueueDepth, sp.Requests, sp.Clients)
		}
		if out.answered == 0 {
			out.fail("proxy-overload-sheds", "no request was answered under fleet overload")
		}
	} else if out.shed > 0 {
		out.fail("logits-match-reference", "%d requests shed under %s traffic", out.shed, sp.Traffic)
	}
	if out.errored > 0 {
		out.fail("logits-match-reference", "%d requests failed with unexpected errors", out.errored)
	}

	// Latency percentiles: worst backend across the fleet.
	for _, name := range det.SortedKeys(engines) {
		st := engines[name].Stats()
		if st.P50Nanos > out.p50 {
			out.p50 = st.P50Nanos
		}
		if st.P99Nanos > out.p99 {
			out.p99 = st.P99Nanos
		}
	}
	return out, nil
}

// buildFleet stands up the scenario's backends behind a fresh proxy:
// b0..bN-1, each an engine loaded from the same checkpoint, registered
// through the in-process Conn.
func (r *runner) buildFleet(sp scenario.Spec, ckpt []byte) (*fleet.Proxy, map[string]*serve.Engine, error) {
	policy, err := fleet.PolicyByName(sp.Policy)
	if err != nil {
		return nil, nil, err
	}
	proxy := fleet.NewProxy(fleet.Config{Policy: policy, Clock: r.clock})
	engines := make(map[string]*serve.Engine, sp.Backends)
	for i := 0; i < sp.Backends; i++ {
		eng, err := serve.Load(sp.ServeBuilder(), bytes.NewReader(ckpt), sp.ServeConfig(r.clock, nil))
		if err != nil {
			closeEngines(engines)
			return nil, nil, err
		}
		name := fmt.Sprintf("b%d", i)
		engines[name] = eng
		if err := proxy.ControlPlane().Register(name, fleet.NewEngineConn(eng)); err != nil {
			closeEngines(engines)
			return nil, nil, err
		}
	}
	return proxy, engines, nil
}

func closeEngines(engines map[string]*serve.Engine) {
	for _, name := range det.SortedKeys(engines) {
		engines[name].Close()
	}
}

// fleetCrashDrill kills one backend outright mid-traffic and requires the
// proxy to fail every affected request over to the survivors: all accepted
// requests are answered (zero loss) and every answer still bit-matches the
// batch-1 reference. The dead backend's conn keeps failing, so the control
// plane accrues predict-path evidence and ejects it.
func (r *runner) fleetCrashDrill(sp scenario.Spec, engines map[string]*serve.Engine, predict predictFn, images, refs [][]float32, out *serveOutcome) error {
	const check = "backend-failover-zero-loss"
	half := sp.Requests / 2
	if err := r.runPlan(sp, predict, half, images, matchRefs(refs), nil, out); err != nil {
		return err
	}
	names := det.SortedKeys(engines)
	victim := names[len(names)-1]
	engines[victim].Close()
	if err := r.runPlan(sp, predict, sp.Requests-half, images, matchRefs(refs), nil, out); err != nil {
		return err
	}
	if out.answered != sp.Requests {
		out.fail(check, "answered %d of %d requests around the %s crash (shed %d, errored %d)",
			out.answered, sp.Requests, victim, out.shed, out.errored)
	}
	return nil
}

// matchEither accepts answers from either the outgoing or the incoming
// generation — during a rolling reload each backend swaps at its own moment,
// but no answer may blend the two or miss both.
func matchEither(prev, next [][]float32, check string) matchFn {
	return func(image int, logits []float32) (string, string) {
		if equalF32(logits, prev[image]) || equalF32(logits, next[image]) {
			return "", ""
		}
		return check, fmt.Sprintf("image %d logits match neither the old nor the new generation", image)
	}
}

// fleetReloadDrill rolls a second checkpoint through the fleet while client
// traffic keeps flowing (the roll rides one extra pool partition): during
// the roll every answer must bit-match exactly one generation and nothing
// errors; afterwards every backend must be active at generation >= 2 and a
// full plan must bit-match only the fresh single-process folded reference.
func (r *runner) fleetReloadDrill(sp scenario.Spec, proxy *fleet.Proxy, predict predictFn, images, refs [][]float32, out *serveOutcome) error {
	const check = "rolling-reload-bit-identical"
	spB := sp
	spB.Seed = sp.Seed + 1
	ckptB, err := r.checkpoint(spB)
	if err != nil {
		return err
	}
	refsB, err := r.refsFor(sp, ckptB, images)
	if err != nil {
		return err
	}

	var rollErr error
	var gens map[string]uint64
	roll := func() { gens, rollErr = proxy.RollingReload(ckptB) }
	if err := r.runPlan(sp, predict, sp.Requests, images, matchEither(refs, refsB, check), roll, out); err != nil {
		return err
	}
	if rollErr != nil {
		out.fail(check, "rolling reload failed: %v", rollErr)
		return nil
	}
	for _, name := range det.SortedKeys(gens) {
		if gens[name] < 2 {
			out.fail(check, "backend %s at generation %d after the roll, want >= 2", name, gens[name])
		}
	}
	states := proxy.ControlPlane().States()
	for _, name := range det.SortedKeys(states) {
		if states[name] != fleet.StateActive {
			out.fail(check, "backend %s left %s after the roll", name, states[name])
		}
	}
	n := sp.Requests / 2
	if n == 0 {
		n = 1
	}
	return r.runPlan(sp, predict, n, images, matchRefs(refsB), nil, out)
}
