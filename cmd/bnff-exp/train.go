package main

import (
	"bytes"
	"fmt"

	"bnff/internal/experiments"
	"bnff/internal/obs"
	"bnff/internal/scenario"
)

// runTrain executes one training scenario Repeats times from identical
// starting conditions and verifies the bit-identical-repeats contract: the
// same seed must yield the same final loss and the same trained-parameter
// checkpoint, byte for byte, every time. The trained-checkpoint digest of the
// first repeat is the scenario's recorded digest.
func (r *runner) runTrain(sp scenario.Spec) (experiments.BenchScenario, error) {
	var (
		digests     []string
		losses      []float64
		times       []float64
		stepRates   []float64
		reduceBytes []float64
	)
	for rep := 0; rep < sp.Repeats; rep++ {
		tr, err := sp.NewTrainer()
		if err != nil {
			return experiments.BenchScenario{}, err
		}
		t0 := r.clock()
		res, err := tr.Run(sp.Steps)
		if err != nil {
			return experiments.BenchScenario{}, err
		}
		elapsed := float64(r.clock() - t0)
		times = append(times, elapsed)
		if elapsed > 0 {
			stepRates = append(stepRates, float64(sp.Steps)/(elapsed/1e9))
		}
		losses = append(losses, res.Loss)
		if g := tr.Group(); g != nil && sp.Replicas > 1 {
			reduceBytes = append(reduceBytes, float64(g.ReduceBytes()))
		}
		var buf bytes.Buffer
		if err := tr.Exec.Save(&buf); err != nil {
			return experiments.BenchScenario{}, err
		}
		digests = append(digests, digestOf(buf.Bytes()))
	}

	check := experiments.BenchCheck{Name: "bit-identical-repeats", Pass: true}
	for i := 1; i < sp.Repeats; i++ {
		if digests[i] != digests[0] {
			check.Pass = false
			check.Detail = fmt.Sprintf("repeat %d checkpoint %s != repeat 0 %s", i, digests[i], digests[0])
			break
		}
		if losses[i] != losses[0] {
			check.Pass = false
			check.Detail = fmt.Sprintf("repeat %d final loss %v != repeat 0 %v", i, losses[i], losses[0])
			break
		}
	}

	metrics := []experiments.BenchMetric{
		{Name: "final_loss", Unit: "loss", Agg: obs.Aggregate(losses)},
		{Name: "train_time", Unit: "ns", Timing: true, Agg: obs.Aggregate(times)},
		{Name: "steps_per_sec", Unit: "steps/s", Timing: true, Agg: obs.Aggregate(stepRates)},
	}
	if len(reduceBytes) > 0 {
		// All-reduce traffic is a pure function of the graph and step count —
		// deterministic, so it lives in the canonical (non-timing) metrics.
		metrics = append(metrics,
			experiments.BenchMetric{Name: "ddp_reduce_bytes", Unit: "bytes", Agg: obs.Aggregate(reduceBytes)})
	}
	return experiments.BenchScenario{
		Name:    sp.Name,
		Spec:    sp,
		Repeats: sp.Repeats,
		Digest:  digests[0],
		Checks:  []experiments.BenchCheck{check},
		Metrics: metrics,
	}, nil
}
