// bnff-exp executes declarative experiment grids and emits the paper's
// machine-readable evidence files. A grid (scripts/paper/experiments.json, or
// the built-in default) lists training and serving scenarios as
// scenario.Specs; bnff-exp runs each one Repeats times under an injected
// clock, evaluates the checks the spec embeds (bit-identical training
// repeats, serve logits bit-matching a batch-1 reference, overload shedding,
// replica-crash recovery, checkpoint survival of a failed save), aggregates
// min/median/mean/max across repeats, and writes BENCH_train.json and
// BENCH_serve.json. Non-timing fields of those files are byte-deterministic:
// two runs of the same grid differ only in timing-flagged aggregates.
//
// Usage:
//
//	bnff-exp                                  # built-in grid, full run
//	bnff-exp -grid scripts/paper/experiments.json -out .
//	bnff-exp -smoke                           # the grid's smoke subset
//	bnff-exp -only serve/tiny-densenet/overload    # one scenario
//	bnff-exp -write-grid                      # regenerate experiments.json
//	bnff-exp -validate BENCH_train.json,BENCH_serve.json
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bnff/internal/experiments"
	"bnff/internal/obs"
	"bnff/internal/scenario"
)

// defaultGridPath is where -write-grid puts the canonical grid and where
// scripts/paper/run_all.sh reads it from.
const defaultGridPath = "scripts/paper/experiments.json"

func main() {
	gridPath := flag.String("grid", "", "experiment grid JSON (empty: the built-in default grid)")
	out := flag.String("out", ".", "directory to write BENCH_train.json / BENCH_serve.json into")
	smoke := flag.Bool("smoke", false, "run only the grid's smoke subset and mark the BENCH files as smoke")
	clockKind := flag.String("clock", "wall", "measurement clock: wall (real time) or step (deterministic fake)")
	only := flag.String("only", "", "comma-separated scenario names to run (empty: every selected scenario)")
	writeGrid := flag.Bool("write-grid", false, fmt.Sprintf("write the built-in grid to -grid (default %s) and exit", defaultGridPath))
	validate := flag.String("validate", "", "comma-separated BENCH_*.json paths to validate and exit")
	canon := flag.String("canon", "", "print the canonical (timing-stripped) form of a BENCH_*.json file and exit")
	flag.Parse()

	if err := run(*gridPath, *out, *clockKind, *only, *smoke, *writeGrid, *validate, *canon); err != nil {
		fmt.Fprintln(os.Stderr, "bnff-exp:", err)
		os.Exit(1)
	}
}

func run(gridPath, out, clockKind, only string, smoke, writeGrid bool, validate, canon string) error {
	if validate != "" {
		return validateFiles(strings.Split(validate, ","))
	}
	if canon != "" {
		f, err := experiments.ReadBenchFile(canon)
		if err != nil {
			return err
		}
		b, err := f.Canonical().MarshalCanonicalJSON()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	if writeGrid {
		path := gridPath
		if path == "" {
			path = defaultGridPath
		}
		return emitGrid(path)
	}

	grid, err := loadGrid(gridPath)
	if err != nil {
		return err
	}
	clock, err := newClock(clockKind)
	if err != nil {
		return err
	}
	train, serve, err := selectSpecs(grid, smoke, only)
	if err != nil {
		return err
	}
	if len(train)+len(serve) == 0 {
		return fmt.Errorf("selection matches no scenarios")
	}

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	r := &runner{clock: clock, ckpts: map[string][]byte{}}
	if err := runArea(r, experiments.AreaTrain, clockKind, smoke, train,
		filepath.Join(out, "BENCH_train.json")); err != nil {
		return err
	}
	return runArea(r, experiments.AreaServe, clockKind, smoke, serve,
		filepath.Join(out, "BENCH_serve.json"))
}

// runArea executes one kind's scenarios in sorted-name order and writes the
// area's BENCH file. An empty selection (e.g. -only naming a single serve
// scenario) skips the file rather than writing an empty one.
func runArea(r *runner, area, clockKind string, smoke bool, specs []scenario.Spec, path string) error {
	if len(specs) == 0 {
		fmt.Fprintf(os.Stderr, "bnff-exp: no %s scenarios selected; skipping %s\n", area, path)
		return nil
	}
	f := &experiments.BenchFile{
		SchemaVersion: experiments.BenchSchemaVersion,
		Area:          area,
		Clock:         clockKind,
		Smoke:         smoke,
	}
	for _, sp := range specs {
		fmt.Fprintf(os.Stderr, "bnff-exp: %s (%d repeats)\n", sp.Name, sp.Repeats)
		var (
			bs  experiments.BenchScenario
			err error
		)
		if area == experiments.AreaTrain {
			bs, err = r.runTrain(sp)
		} else {
			bs, err = r.runServe(sp)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", sp.Name, err)
		}
		for _, c := range bs.Checks {
			status := "ok"
			if !c.Pass {
				status = "FAIL: " + c.Detail
			}
			fmt.Fprintf(os.Stderr, "bnff-exp:   check %s: %s\n", c.Name, status)
		}
		f.Scenarios = append(f.Scenarios, bs)
	}
	if err := f.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d scenarios)\n", path, len(f.Scenarios))
	return nil
}

// selectSpecs resolves the grid + -smoke + -only into per-kind spec lists,
// sorted by name (the order BENCH files require).
func selectSpecs(grid *scenario.Grid, smoke bool, only string) (train, serve []scenario.Spec, err error) {
	reg, err := grid.Registry()
	if err != nil {
		return nil, nil, err
	}
	names := reg.Names()
	if smoke {
		names = append([]string(nil), grid.Smoke...)
	}
	if only != "" {
		var keep []string
		for _, name := range strings.Split(only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := reg.Get(name); !ok {
				return nil, nil, fmt.Errorf("unknown scenario %q (grid has %v)", name, reg.Names())
			}
			keep = append(keep, name)
		}
		names = keep
	}
	sort.Strings(names)
	for _, name := range names {
		sp, ok := reg.Get(name)
		if !ok {
			return nil, nil, fmt.Errorf("smoke entry %q not in grid", name)
		}
		if sp.Kind == scenario.KindTrain {
			train = append(train, sp)
		} else {
			serve = append(serve, sp)
		}
	}
	return train, serve, nil
}

func loadGrid(path string) (*scenario.Grid, error) {
	if path == "" {
		return scenario.DefaultGrid(), nil
	}
	return scenario.LoadGrid(path)
}

func emitGrid(path string) error {
	b, err := scenario.DefaultGrid().MarshalCanonical()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func validateFiles(paths []string) error {
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := experiments.ReadBenchFile(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok (%s, clock=%s, %d scenarios, smoke=%t)\n",
			path, f.Area, f.Clock, len(f.Scenarios), f.Smoke)
	}
	return nil
}

// newClock builds the measurement clock: wall for real timings, step for a
// deterministic fake (timing-flagged fields then depend only on read order).
func newClock(kind string) (func() int64, error) {
	switch kind {
	case experiments.ClockWall:
		return obs.WallClock(), nil
	case experiments.ClockStep:
		return obs.StepClock(1000), nil
	default:
		return nil, fmt.Errorf("unknown clock %q (want wall, step)", kind)
	}
}

// runner carries the run-wide caches: one serve checkpoint per (model, seed)
// regardless of how many scenarios and repeats reuse it.
type runner struct {
	clock func() int64
	ckpts map[string][]byte
}

// digestOf fingerprints deterministic outputs (checkpoint images, reference
// logits) for cross-repeat and cross-run comparison.
func digestOf(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}
