// bnff-inspect dumps a model's graph before/after a restructuring scenario
// with per-operator FLOP and memory-sweep accounting — the textual analogue
// of the paper's Figure 5 diagrams, for whole models.
//
// Usage:
//
//	bnff-inspect -model densenet121 -scenario bnff -batch 120
//	bnff-inspect -model resnet50 -scenario baseline -dir backward
package main

import (
	"flag"
	"fmt"
	"os"

	"bnff/internal/core"
	"bnff/internal/graph"
	"bnff/internal/memsim"
	"bnff/internal/models"
)

func main() {
	model := flag.String("model", "densenet121", fmt.Sprintf("model: one of %v", models.Names()))
	scen := flag.String("scenario", "bnff", "scenario: baseline, rcf, rcf+mvf, bnff, bnff+icf")
	batch := flag.Int("batch", 120, "mini-batch size")
	dir := flag.String("dir", "both", "pass to list: forward, backward, both")
	summary := flag.Bool("summary", false, "print only per-class totals")
	dot := flag.Bool("dot", false, "emit the graph in Graphviz dot format instead of tables")
	save := flag.String("save", "", "write the (restructured) graph to this path in text form")
	trace := flag.String("trace", "", "write a Chrome trace JSON of the simulated iteration to this path")
	flag.Parse()

	if *trace != "" {
		if err := runTrace(*model, *scen, *batch, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "bnff-inspect:", err)
			os.Exit(1)
		}
		return
	}
	if *save != "" {
		if err := runSave(*model, *scen, *batch, *save); err != nil {
			fmt.Fprintln(os.Stderr, "bnff-inspect:", err)
			os.Exit(1)
		}
		return
	}
	if *dot {
		if err := runDOT(*model, *scen, *batch); err != nil {
			fmt.Fprintln(os.Stderr, "bnff-inspect:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*model, *scen, *batch, *dir, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "bnff-inspect:", err)
		os.Exit(1)
	}
}

func build(model string, batch int) (*graph.Graph, error) {
	return models.Build(model, batch)
}

func parseScenario(s string) (core.Scenario, error) {
	for _, sc := range core.Scenarios() {
		if sc.String() == s {
			return sc, nil
		}
	}
	switch s {
	case "rcf+mvf", "mvf":
		return core.RCFMVF, nil
	case "bnff":
		return core.BNFF, nil
	case "bnff+icf", "icf":
		return core.BNFFICF, nil
	case "rcf":
		return core.RCF, nil
	}
	return 0, fmt.Errorf("unknown scenario %q", s)
}

func runTrace(model, scen string, batch int, path string) error {
	scenario, err := parseScenario(scen)
	if err != nil {
		return err
	}
	g, err := build(model, batch)
	if err != nil {
		return err
	}
	if err := core.Restructure(g, scenario.Options()); err != nil {
		return err
	}
	r, err := memsim.Simulate(g, memsim.Skylake())
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.ChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote Chrome trace (%.3f s simulated iteration) to %s — open at chrome://tracing\n",
		r.Total(), path)
	return nil
}

func runSave(model, scen string, batch int, path string) error {
	scenario, err := parseScenario(scen)
	if err != nil {
		return err
	}
	g, err := build(model, batch)
	if err != nil {
		return err
	}
	if err := core.Restructure(g, scenario.Options()); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Serialize(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d live nodes) to %s\n", g.Name, len(g.Live()), path)
	return nil
}

func runDOT(model, scen string, batch int) error {
	scenario, err := parseScenario(scen)
	if err != nil {
		return err
	}
	g, err := build(model, batch)
	if err != nil {
		return err
	}
	if err := core.Restructure(g, scenario.Options()); err != nil {
		return err
	}
	fmt.Print(g.DOT())
	return nil
}

func sweepString(c graph.OpCost) (reads, writes int, gb float64) {
	for _, s := range c.Sweeps {
		if s.Kind != graph.SweepFeatureMap {
			continue
		}
		if s.Write {
			writes++
		} else {
			reads++
		}
		gb += float64(s.Bytes) / 1e9
	}
	return reads, writes, gb
}

func run(model, scen string, batch int, dir string, summary bool) error {
	scenario, err := parseScenario(scen)
	if err != nil {
		return err
	}
	g, err := build(model, batch)
	if err != nil {
		return err
	}
	if err := core.Restructure(g, scenario.Options()); err != nil {
		return err
	}
	costs, err := g.TrainingCosts()
	if err != nil {
		return err
	}

	sum, err := g.Summarize()
	if err != nil {
		return err
	}
	fmt.Printf("%s (scenario %v, batch %d)\n", sum, scenario, batch)
	kinds := g.CountKinds()
	fmt.Printf("kinds: ")
	for k := graph.OpKind(0); int(k) < 32; k++ {
		if kinds[k] > 0 {
			fmt.Printf("%v=%d ", k, kinds[k])
		}
	}
	fmt.Println()

	classFLOPs := map[graph.LayerClass]int64{}
	classGB := map[graph.LayerClass]float64{}
	if !summary {
		fmt.Printf("%-9s %-32s %-12s %6s %6s %10s %12s\n",
			"pass", "node", "kind", "reads", "writes", "sweep GB", "GFLOPs")
	}
	for _, c := range costs {
		if dir == "forward" && c.Dir != graph.Forward {
			continue
		}
		if dir == "backward" && c.Dir != graph.Backward {
			continue
		}
		cls := graph.ClassConcat
		name := c.Node.Name
		kind := "Split"
		if !c.Synthetic {
			cls = c.Node.Class()
			kind = c.Node.Kind.String()
			if c.Node.StatsOut != nil {
				kind += "+stats"
			}
		} else {
			name += ".split"
		}
		r, w, gbs := sweepString(c)
		classFLOPs[cls] += c.FLOPs
		classGB[cls] += gbs
		if !summary {
			fmt.Printf("%-9s %-32s %-12s %6d %6d %10.3f %12.2f\n",
				c.Dir, name, kind, r, w, gbs, float64(c.FLOPs)/1e9)
		}
	}
	fmt.Println("per-class totals:")
	for cls := graph.LayerClass(0); int(cls) < 7; cls++ {
		if classFLOPs[cls] == 0 && classGB[cls] == 0 {
			continue
		}
		fmt.Printf("  %-14s %10.1f GB swept %12.1f GFLOPs\n",
			cls, classGB[cls], float64(classFLOPs[cls])/1e9)
	}
	return nil
}
