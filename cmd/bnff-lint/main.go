// Command bnff-lint runs the repo's static-analysis suite (internal/analysis)
// over the module and reports contract violations as
//
//	file:line: [analyzer] message
//
// with a non-zero exit status when any finding survives suppression. Findings
// are suppressed inline with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory.
//
// Usage:
//
//	bnff-lint [-list] [-analyzers name,name] [-json] [-workers n] [packages]
//
// The package arguments accept the go-tool spelling: "./..." (the default)
// lints every package in the module; an explicit relative directory lints
// just that package. Test files are not linted — the determinism contracts
// govern shipped code, and _test.go files legitimately use goroutines and
// channels to exercise it.
//
// -json switches the findings to newline-delimited JSON objects
// ({"file","line","col","analyzer","message"}), one per finding, for
// machine consumers; the exit status is unchanged. Loading and type-checking
// fan out over -workers goroutines (default GOMAXPROCS); diagnostics print
// in the same deterministic order at any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"bnff/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as newline-delimited JSON objects")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "goroutines for package loading and type-checking")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bnff-lint [-list] [-analyzers name,name] [-json] [-workers n] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *names != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*names, ",") {
			a := analysis.Lookup(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}

	dirs, err := resolvePatterns(root, cwd, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	pkgs, err := loader.LoadAll(dirs, *workers)
	if err != nil {
		fatalf("%v", err)
	}
	enc := json.NewEncoder(os.Stdout)
	findings := 0
	for _, pkg := range pkgs {
		if pkg.TypeErr != nil {
			// Analyzers degrade without full type information; tell the user
			// so a surprising silence is explainable.
			fmt.Fprintf(os.Stderr, "bnff-lint: warning: type-checking %s: %v\n", pkg.ImportPath, pkg.TypeErr)
		}
		for _, d := range analysis.RunAnalyzers(pkg, analyzers) {
			if *jsonOut {
				if err := enc.Encode(jsonFinding{
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				}); err != nil {
					fatalf("%v", err)
				}
			} else {
				fmt.Println(d.String())
			}
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "bnff-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// jsonFinding is the -json wire format: one object per line, stable field
// names, module-relative file paths — the shape the CI problem matcher and
// any dashboard ingestion parse.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// resolvePatterns maps go-tool-style package arguments onto module-relative
// directories. Supported forms: "./..." and "..." (whole module), "./dir",
// "dir", and "./dir/..." (subtree).
func resolvePatterns(root, cwd string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, arg := range args {
		recursive := false
		if arg == "..." || strings.HasSuffix(arg, "/...") {
			recursive = true
			arg = strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")
			if arg == "" {
				arg = "."
			}
		}
		abs := filepath.Join(cwd, arg)
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package pattern %q escapes the module at %s", arg, root)
		}
		if !recursive {
			add(rel)
			continue
		}
		dirs, err := analysis.PackageDirs(abs)
		if err != nil {
			return nil, err
		}
		for _, d := range dirs {
			add(filepath.Join(rel, d))
		}
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bnff-lint: "+format+"\n", args...)
	os.Exit(2)
}
