#!/usr/bin/env bash
# Smoke test for the serving fleet: bnff-proxy fronting two bnff-serve
# backends over the real wire. Proves the fleet's three contracts end to end:
#
#   1. Rolling reload under load: POST /fleet/reload swaps a new checkpoint
#      through the fleet one drained backend at a time while client traffic
#      keeps flowing — zero non-200 answers, and every answer bit-matches a
#      fresh single-process folded reference of either the old or the new
#      checkpoint (no blended generations). Afterwards both backends report
#      generation 2 and answers bit-match only the new reference.
#   2. Backend crash with failover: SIGKILL one backend mid-traffic — every
#      accepted request is still answered 200 with bit-identical logits
#      (zero accepted-request loss), and the control plane ejects the corpse.
#   3. Clean shutdown: proxy and surviving backend exit cleanly on SIGTERM.
#
# Run from the repository root (make fleet-smoke / CI).
set -euo pipefail

PROXY_ADDR="${BNFF_FLEET_PROXY_ADDR:-127.0.0.1:18440}"
B0_ADDR="${BNFF_FLEET_B0_ADDR:-127.0.0.1:18441}"
B1_ADDR="${BNFF_FLEET_B1_ADDR:-127.0.0.1:18442}"
REF_ADDR="${BNFF_FLEET_REF_ADDR:-127.0.0.1:18443}"

DIR="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/bnff-train" ./cmd/bnff-train
go build -o "$DIR/bnff-serve" ./cmd/bnff-serve
go build -o "$DIR/bnff-proxy" ./cmd/bnff-proxy

# Two checkpoints of the baseline tiny-cnn graph: A is what the fleet boots
# from, B is what the rolling reload swaps in.
"$DIR/bnff-train" -model tiny-cnn -restructure baseline -steps 8 -seed 42 \
    -save "$DIR/ckptA" >/dev/null
"$DIR/bnff-train" -model tiny-cnn -restructure baseline -steps 8 -seed 43 \
    -save "$DIR/ckptB" >/dev/null

wait_ready() { # url name pid
    for _ in $(seq 1 120); do
        curl -sf "$1" >/dev/null 2>&1 && return 0
        kill -0 "$3" 2>/dev/null || { echo "$2 died during startup" >&2; return 1; }
        sleep 0.25
    done
    echo "$2 never became ready at $1" >&2
    return 1
}

"$DIR/bnff-serve" -model tiny-cnn -checkpoint "$DIR/ckptA" -addr "$B0_ADDR" >"$DIR/b0.log" 2>&1 &
B0=$!
"$DIR/bnff-serve" -model tiny-cnn -checkpoint "$DIR/ckptA" -addr "$B1_ADDR" >"$DIR/b1.log" 2>&1 &
B1=$!
wait_ready "http://$B0_ADDR/readyz" b0 "$B0"
wait_ready "http://$B1_ADDR/readyz" b1 "$B1"

"$DIR/bnff-proxy" -addr "$PROXY_ADDR" -backends "http://$B0_ADDR,http://$B1_ADDR" \
    -probe-interval 250ms >"$DIR/proxy.log" 2>&1 &
PROXY=$!
wait_ready "http://$PROXY_ADDR/readyz" proxy "$PROXY"

# tiny-cnn takes 3x8x8 = 192 floats.
payload="{\"image\":[$(awk 'BEGIN{for(i=0;i<192;i++)printf "%s0.5",(i?",":"")}')]}"

# Fresh single-process folded references: what a standalone engine answers
# for this image under each checkpoint. These are the bit-match oracles.
"$DIR/bnff-serve" -model tiny-cnn -checkpoint "$DIR/ckptA" -addr "$REF_ADDR" >"$DIR/ref.log" 2>&1 &
REF=$!
wait_ready "http://$REF_ADDR/readyz" refA "$REF"
refA=$(curl -sf -X POST -d "$payload" "http://$REF_ADDR/predict")
kill -TERM "$REF" && wait "$REF"
"$DIR/bnff-serve" -model tiny-cnn -checkpoint "$DIR/ckptB" -addr "$REF_ADDR" >"$DIR/ref.log" 2>&1 &
REF=$!
wait_ready "http://$REF_ADDR/readyz" refB "$REF"
refB=$(curl -sf -X POST -d "$payload" "http://$REF_ADDR/predict")
kill -TERM "$REF" && wait "$REF"
[ -n "$refA" ] && [ -n "$refB" ] && [ "$refA" != "$refB" ] \
    || { echo "reference logits empty or checkpoints indistinct" >&2; exit 1; }

# Baseline: proxied answers bit-match the single-process reference.
for i in $(seq 1 8); do
    got=$(curl -sf -X POST -H "X-Route-Key: key-$i" -d "$payload" "http://$PROXY_ADDR/predict")
    [ "$got" = "$refA" ] || { echo "pre-reload answer differs from reference: $got" >&2; exit 1; }
done
echo "fleet answers bit-match the single-process reference"

# Rolling reload under load: client traffic in the background, reload in the
# foreground. Every answer must be 200 and bit-match exactly one generation.
: >"$DIR/codes"; : >"$DIR/bodies"
(
    for i in $(seq 1 40); do
        curl -s -o >(cat >>"$DIR/bodies"; echo >>"$DIR/bodies") -w '%{http_code}\n' \
            -X POST -H "X-Route-Key: roll-$i" -d "$payload" \
            "http://$PROXY_ADDR/predict" >>"$DIR/codes"
    done
) &
TRAFFIC=$!
gens=$(curl -sf -X POST --data-binary "@$DIR/ckptB" "http://$PROXY_ADDR/fleet/reload")
wait "$TRAFFIC"
echo "rolling reload: $gens"
echo "$gens" | grep -q '"b0":2' || { echo "b0 not at generation 2" >&2; exit 1; }
echo "$gens" | grep -q '"b1":2' || { echo "b1 not at generation 2" >&2; exit 1; }
bad=$(grep -cv '^200$' "$DIR/codes" || true)
[ "$bad" = "0" ] || { echo "$bad non-200 answers during rolling reload" >&2; sort "$DIR/codes" | uniq -c >&2; exit 1; }
while IFS= read -r body; do
    [ -z "$body" ] && continue
    [ "$body" = "$refA" ] || [ "$body" = "$refB" ] \
        || { echo "mid-reload answer matches neither generation: $body" >&2; exit 1; }
done <"$DIR/bodies"
echo "zero non-200 answers during the roll; every answer bit-matched one generation"

# Post-reload: the whole fleet answers from the new checkpoint.
for i in $(seq 1 8); do
    got=$(curl -sf -X POST -H "X-Route-Key: post-$i" -d "$payload" "http://$PROXY_ADDR/predict")
    [ "$got" = "$refB" ] || { echo "post-reload answer differs from new reference: $got" >&2; exit 1; }
done
echo "post-reload answers bit-match the fresh single-process reference"

# Backend crash with failover: SIGKILL b1 mid-traffic; every request must
# still come back 200 with the reference logits — zero accepted-request loss.
for i in $(seq 1 30); do
    [ "$i" = 10 ] && { kill -9 "$B1" && wait "$B1"; } 2>/dev/null || true
    got=$(curl -s -w '\n%{http_code}' -X POST -H "X-Route-Key: crash-$i" -d "$payload" \
        "http://$PROXY_ADDR/predict")
    code=${got##*$'\n'}
    body=${got%$'\n'*}
    body=${body%$'\n'} # the JSON encoder newline-terminates the body
    [ "$code" = "200" ] || { echo "request $i lost after backend kill: HTTP $code" >&2; exit 1; }
    [ "$body" = "$refB" ] || { echo "request $i logits differ after failover" >&2; exit 1; }
done
echo "backend kill mid-traffic: zero accepted-request loss, answers still bit-identical"

# The control plane must eject the corpse after consecutive probe failures.
ejected=""
for _ in $(seq 1 40); do
    if curl -sf "http://$PROXY_ADDR/fleet/status" | grep -q '"state":"ejected"'; then
        ejected=yes
        break
    fi
    sleep 0.25
done
[ "$ejected" = yes ] || { echo "dead backend never ejected" >&2; curl -sf "http://$PROXY_ADDR/fleet/status" >&2; exit 1; }
echo "dead backend ejected by the control plane"

# Clean SIGTERM shutdown for the proxy and the surviving backend.
kill -TERM "$PROXY"
wait "$PROXY" || { echo "proxy exited non-zero on SIGTERM" >&2; cat "$DIR/proxy.log" >&2; exit 1; }
kill -TERM "$B0"
wait "$B0" || { echo "b0 exited non-zero on SIGTERM" >&2; cat "$DIR/b0.log" >&2; exit 1; }
echo "fleet smoke OK"
