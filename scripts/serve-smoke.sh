#!/usr/bin/env bash
# Smoke test for cmd/bnff-serve: build the daemon, start it on a self-trained
# tiny-cnn, exercise /healthz, /predict, and /stats, then verify it exits
# cleanly on SIGTERM. Run from the repository root (make smoke / CI).
set -euo pipefail

ADDR="${BNFF_SMOKE_ADDR:-127.0.0.1:18431}"
BIN="$(mktemp -d)/bnff-serve"
LOG="$(mktemp)"
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

go build -o "$BIN" ./cmd/bnff-serve

"$BIN" -model tiny-cnn -train-steps 10 -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!

# Wait for the listener (self-training takes a moment).
for i in $(seq 1 60); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "bnff-serve died during startup:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.5
done
curl -sf "http://$ADDR/healthz" >/dev/null || { echo "healthz never came up" >&2; cat "$LOG" >&2; exit 1; }

# tiny-cnn takes 3x8x8 = 192 floats.
payload="{\"image\":[$(awk 'BEGIN{for(i=0;i<192;i++)printf "%s0.5",(i?",":"")}')]}"
predict=$(curl -sf -X POST -d "$payload" "http://$ADDR/predict")
echo "predict: $predict"
echo "$predict" | grep -q '"logits"' || { echo "no logits in predict reply" >&2; exit 1; }
echo "$predict" | grep -q '"class"' || { echo "no class in predict reply" >&2; exit 1; }

# A wrong-sized image must be a 400, not a server error.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"image":[1,2,3]}' "http://$ADDR/predict")
[ "$code" = "400" ] || { echo "bad image returned HTTP $code, want 400" >&2; exit 1; }

stats=$(curl -sf "http://$ADDR/stats")
echo "stats: $stats"
echo "$stats" | grep -q '"requests":1' || { echo "stats did not count the request" >&2; exit 1; }

# /metrics must scrape as Prometheus text exposition and count the request.
metrics=$(curl -sf "http://$ADDR/metrics")
echo "$metrics" | grep -q '^# TYPE bnff_serve_requests_total counter' \
    || { echo "metrics missing requests_total TYPE line" >&2; exit 1; }
echo "$metrics" | grep -q '^bnff_serve_requests_total 1$' \
    || { echo "metrics did not count the request" >&2; exit 1; }
echo "$metrics" | grep -q '^bnff_serve_latency_ns_count 1$' \
    || { echo "metrics latency histogram did not observe the request" >&2; exit 1; }

# Graceful shutdown: SIGTERM must produce a clean exit.
kill -TERM "$PID"
if ! wait "$PID"; then
    echo "bnff-serve exited non-zero on SIGTERM:" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "serve smoke OK"
