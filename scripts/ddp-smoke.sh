#!/usr/bin/env bash
# Smoke test for data-parallel training (internal/ddp) through cmd/bnff-train:
#
#   1. A 2-replica sync-BN self-train run is byte-deterministic: two runs from
#      the same seed produce byte-identical checkpoints (the exchanger's
#      replica-order folds and the fixed-order tree all-reduce leave no
#      scheduling noise in the trained parameters).
#   2. Same for the ghost-batch (local) strategy at 2 replicas.
#   3. The two strategies genuinely differ: sync normalizes with whole-batch
#      statistics, local with per-shard ones, so their checkpoints must not
#      collide.
#   4. -replicas 1 is the degenerate path and matches a run without the flag.
#
# Run from the repository root (make ddp-smoke / CI).
set -euo pipefail

DIR="$(mktemp -d)"
BIN="$DIR/bnff-train"
trap 'rm -rf "$DIR"' EXIT

go build -o "$BIN" ./cmd/bnff-train

run() { # run <out.ckpt> <extra flags...>
    local out="$1"; shift
    "$BIN" -model tiny-cnn -restructure bnff -batch 8 -steps 6 -log-every 6 \
        -save "$out" "$@" >/dev/null
}

run "$DIR/sync-a.ckpt" -replicas 2 -bn-strategy sync
run "$DIR/sync-b.ckpt" -replicas 2 -bn-strategy sync
cmp "$DIR/sync-a.ckpt" "$DIR/sync-b.ckpt" \
    || { echo "2-replica sync-BN training is not byte-deterministic" >&2; exit 1; }
echo "ok: 2-replica sync-BN run is byte-deterministic"

run "$DIR/local-a.ckpt" -replicas 2 -bn-strategy local
run "$DIR/local-b.ckpt" -replicas 2 -bn-strategy local
cmp "$DIR/local-a.ckpt" "$DIR/local-b.ckpt" \
    || { echo "2-replica ghost-batch training is not byte-deterministic" >&2; exit 1; }
echo "ok: 2-replica ghost-batch run is byte-deterministic"

if cmp -s "$DIR/sync-a.ckpt" "$DIR/local-a.ckpt"; then
    echo "sync and local checkpoints are identical; the BN strategy is not taking effect" >&2
    exit 1
fi
echo "ok: sync and ghost-batch checkpoints differ"

run "$DIR/one.ckpt" -replicas 1
run "$DIR/plain.ckpt"
cmp "$DIR/one.ckpt" "$DIR/plain.ckpt" \
    || { echo "-replicas 1 diverged from the plain trainer" >&2; exit 1; }
echo "ok: -replicas 1 matches the plain trainer byte for byte"

echo "ddp smoke passed"
