#!/usr/bin/env bash
# Smoke test for cmd/bnff-profile: run a traced training step of a tiny model
# under the deterministic step clock, check the breakdown output, validate
# that every emitted Chrome trace is well-formed JSON, and verify the
# measured traces are byte-identical across two runs (the determinism
# contract of the injected clock). Run from the repository root
# (make profile-smoke / CI).
#
# BNFF_PROFILE_OUT, when set, keeps the traces in that directory so CI can
# upload them as a workflow artifact.
set -euo pipefail

MODEL="${BNFF_PROFILE_MODEL:-tiny-densenet}"
OUT="${BNFF_PROFILE_OUT:-$(mktemp -d)}"
BIN="$(mktemp -d)/bnff-profile"
mkdir -p "$OUT"

go build -o "$BIN" ./cmd/bnff-profile

run() { # run <prefix>
    "$BIN" -model "$MODEL" -batch 4 -steps 1 -clock step -trace "$OUT/$1"
}

echo "== bnff-profile $MODEL (run 1) =="
run run1 | tee "$OUT/breakdown.txt"

# The summary must report the headline comparison.
grep -q "non-CONV share:" "$OUT/breakdown.txt" || {
    echo "breakdown output missing the non-CONV share summary" >&2
    exit 1
}

# Every scenario must have produced a measured and a modeled trace, and each
# must parse as JSON.
traces=("$OUT"/run1.*.trace.json)
[ "${#traces[@]}" -ge 10 ] || {
    echo "expected >=10 trace files (measured+modeled x 5 scenarios), got ${#traces[@]}" >&2
    exit 1
}
for t in "${traces[@]}"; do
    python3 -m json.tool "$t" >/dev/null || { echo "invalid JSON: $t" >&2; exit 1; }
done
echo "all ${#traces[@]} traces parse as JSON"

# Determinism: a second run under the same step clock must emit byte-identical
# measured traces.
echo "== bnff-profile $MODEL (run 2, determinism) =="
run run2 >/dev/null
for t in "$OUT"/run1.*.trace.json; do
    cmp -s "$t" "${t/run1/run2}" || { echo "trace differs across runs: $t" >&2; exit 1; }
done
rm -f "$OUT"/run2.*.trace.json
echo "traces byte-identical across runs"
echo "profile smoke OK (traces in $OUT)"
