#!/usr/bin/env bash
# Paper-grade experiment runner: build cmd/bnff-exp, execute the committed
# grid (scripts/paper/experiments.json), validate the emitted BENCH files,
# and prove the byte-determinism contract on the non-timing fields. Run from
# the repository root:
#
#   scripts/paper/run_all.sh              # full grid -> BENCH files in repo root
#   scripts/paper/run_all.sh -smoke       # the grid's smoke subset (CI)
#
# BNFF_BENCH_OUT, when set, chooses the output directory so CI can upload
# BENCH_train.json / BENCH_serve.json as workflow artifacts.
set -euo pipefail

SMOKE=""
if [ "${1:-}" = "-smoke" ]; then
    SMOKE="-smoke"
    shift
fi
[ $# -eq 0 ] || { echo "usage: $0 [-smoke]" >&2; exit 2; }

GRID="scripts/paper/experiments.json"
OUT="${BNFF_BENCH_OUT:-.}"
BIN="$(mktemp -d)/bnff-exp"
mkdir -p "$OUT"

go build -o "$BIN" ./cmd/bnff-exp

# The committed grid must be exactly what -write-grid would regenerate;
# a drifted checkin would silently change what "the paper's grid" means.
TMPGRID="$(mktemp -d)/experiments.json"
"$BIN" -write-grid -grid "$TMPGRID" >/dev/null
cmp -s "$GRID" "$TMPGRID" || {
    echo "$GRID is stale: regenerate with 'go run ./cmd/bnff-exp -write-grid'" >&2
    exit 1
}
echo "grid up to date: $GRID"

echo "== bnff-exp $SMOKE (run 1) =="
"$BIN" -grid "$GRID" -out "$OUT" $SMOKE

# Both files must exist, revalidate from disk, and parse as plain JSON.
for f in "$OUT/BENCH_train.json" "$OUT/BENCH_serve.json"; do
    [ -f "$f" ] || { echo "missing $f" >&2; exit 1; }
    python3 -m json.tool "$f" >/dev/null || { echo "invalid JSON: $f" >&2; exit 1; }
done
"$BIN" -validate "$OUT/BENCH_train.json,$OUT/BENCH_serve.json"

# Determinism: a second run's canonical (timing-stripped) form must be
# byte-identical to the first's.
echo "== bnff-exp $SMOKE (run 2, determinism) =="
OUT2="$(mktemp -d)"
"$BIN" -grid "$GRID" -out "$OUT2" $SMOKE >/dev/null
for name in BENCH_train.json BENCH_serve.json; do
    "$BIN" -canon "$OUT/$name" > "$OUT2/$name.canon1"
    "$BIN" -canon "$OUT2/$name" > "$OUT2/$name.canon2"
    cmp -s "$OUT2/$name.canon1" "$OUT2/$name.canon2" || {
        echo "non-timing fields differ across runs: $name" >&2
        diff "$OUT2/$name.canon1" "$OUT2/$name.canon2" >&2 || true
        exit 1
    }
done
echo "canonical BENCH forms byte-identical across runs"
echo "paper run OK (BENCH files in $OUT)"
