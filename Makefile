GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race run exercises the worker-pool paths (the serial-vs-parallel
# equivalence test runs every tiny model at workers > 1) and is part of the
# tier-1 verification for any change touching internal/parallel or a layer
# dispatch.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

check: vet race
