GO ?= go

.PHONY: build test vet race lint bench smoke fleet-smoke profile-smoke exp-smoke ddp-smoke alloc-guard check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race run exercises the worker-pool paths (the serial-vs-parallel
# equivalence test runs every tiny model at workers > 1) and is part of the
# tier-1 verification for any change touching internal/parallel or a layer
# dispatch.
race:
	$(GO) test -race ./...

# bnff-lint is the repo's own static-analysis suite (internal/analysis). It
# enforces the determinism, pool-dispatch, and numerics contracts the README
# "Static analysis" section documents: no ad-hoc goroutines or channels
# outside the allowlisted concurrency domains internal/parallel,
# internal/serve, internal/obs, and internal/ddp (poolonly), no
# order-sensitive sinks in map
# ranges (maporder), no package-level mutable state in the hot-path packages
# (noglobals), det-reduce markers on every cross-partition combine loop
# (detreduce), all randomness through the seeded tensor RNG and all library
# timing through injected clocks (seededrand), arena buffers released or
# detached on every path (arenaown), tracer spans ended on every path
# (spanpair), and no heap-allocating constructs inside "hot-path:" functions
# or pool-dispatched closures (hotalloc). Suppress individual findings with
# "//lint:ignore <analyzer> <reason>" on or directly above the line; a
# suppression whose finding disappears is itself flagged (staleignore).
lint:
	$(GO) run ./cmd/bnff-lint ./...

# Package-level benchmarks live next to their packages (layers, kernels,
# parallel, ...), so bench sweeps the whole module, not just the root.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# End-to-end check of cmd/bnff-serve: build, self-train, serve, exercise
# /predict /healthz /stats, and verify graceful SIGTERM shutdown.
smoke:
	./scripts/serve-smoke.sh

# End-to-end check of the serving fleet: bnff-proxy over two bnff-serve
# backends on the real wire — rolling checkpoint reload under load (zero
# non-200, answers bit-match a fresh single-process folded reference),
# SIGKILL one backend mid-traffic (zero accepted-request loss, control-plane
# ejection), clean SIGTERM shutdown.
fleet-smoke:
	./scripts/fleet-smoke.sh

# End-to-end check of cmd/bnff-profile: traced training step per scenario
# under the deterministic step clock, JSON-valid Chrome traces, byte-identical
# across runs.
profile-smoke:
	./scripts/profile-smoke.sh

# Smoke run of the paper-grade experiment harness: build cmd/bnff-exp, run
# the committed grid's smoke subset with repeats, validate the emitted
# BENCH_train.json / BENCH_serve.json (embedded checks must all pass), and
# prove the canonical forms are byte-deterministic across two runs.
exp-smoke:
	./scripts/paper/run_all.sh -smoke

# End-to-end check of data-parallel training through cmd/bnff-train: 2-replica
# sync-BN and ghost-batch runs are byte-deterministic across repeats, the two
# strategies produce different checkpoints, and -replicas 1 matches the plain
# trainer byte for byte.
ddp-smoke:
	./scripts/ddp-smoke.sh

# Allocation-regression guard: steady-state per-step heap allocations with the
# arena on must stay within the committed budget
# (internal/core/testdata/arena_alloc_budget.txt) and at least 10x below the
# legacy path. Runs without -race: the race runtime inflates AllocsPerRun, so
# the test skips itself there (see raceEnabled in internal/core).
alloc-guard:
	$(GO) test ./internal/core/ -run TestArenaForwardAllocBudget -count=1 -v

check: vet race lint smoke fleet-smoke profile-smoke exp-smoke ddp-smoke alloc-guard
